// Package dataserver implements Mayflower's chunk storage server
// (§3.3.2 of the paper). Each file is a directory in the dataserver's
// local filesystem named by the file's UUID; the directory holds a
// metadata file plus the chunks as numbered files (the first chunk is
// "1", the second "2", ...). Appends are atomic and ordered by the file's
// primary dataserver, which relays them to the other replica hosts while
// applying them locally. Reads are served concurrently with an append as
// long as they do not touch the last (still growing) chunk.
package dataserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/uuid"
)

// Well-known storage errors.
var (
	ErrUnknownFile   = errors.New("dataserver: unknown file")
	ErrOffsetGap     = errors.New("dataserver: append offset does not match local size")
	ErrOutOfRange    = errors.New("dataserver: read beyond end of file")
	ErrNotPrimary    = errors.New("dataserver: this server is not the file's primary")
	ErrAlreadyExists = errors.New("dataserver: file already exists")
)

const metaFileName = "meta.json"

// fileState is the in-memory handle for one stored file.
type fileState struct {
	info nameserver.FileInfo

	// appendMu serializes appends: the dataserver services one append at
	// a time per file (§3.3.2).
	appendMu sync.Mutex

	// tailMu guards the last chunk: appends hold it exclusively, reads
	// that touch the last chunk hold it shared; reads of earlier
	// (immutable) chunks skip it entirely.
	tailMu sync.RWMutex

	// mu guards size.
	mu   sync.Mutex
	size int64

	// seqMu guards the append-dedupe records: the offset each recent
	// append sequence number was applied at, with insertion order kept
	// for eviction. Replicas record relayed sequences too, so a replica
	// promoted to primary by repair inherits the dedupe state for pieces
	// it already holds.
	seqMu    sync.Mutex
	seqOff   map[uint64]int64
	seqOrder []uint64
}

// maxSeqRecords bounds the per-file append-dedupe memory. Re-sent pieces
// arrive within a handful of client retry windows, so only a short
// window of recent sequence numbers ever matters.
const maxSeqRecords = 1024

// recordSeq remembers the offset an append sequence number was assigned,
// so a re-sent piece (lost ack, client failover) is applied at the same
// offset instead of appended twice. Oldest records are evicted first;
// sequence 0 means "no dedupe" and is never recorded.
func (f *fileState) recordSeq(seq uint64, offset int64) {
	if seq == 0 {
		return
	}
	f.seqMu.Lock()
	defer f.seqMu.Unlock()
	if f.seqOff == nil {
		f.seqOff = make(map[uint64]int64)
	}
	if _, ok := f.seqOff[seq]; !ok {
		f.seqOrder = append(f.seqOrder, seq)
		if len(f.seqOrder) > maxSeqRecords {
			delete(f.seqOff, f.seqOrder[0])
			f.seqOrder = f.seqOrder[1:]
		}
	}
	f.seqOff[seq] = offset
}

// lookupSeq returns the offset a sequence number was applied at, if it is
// still in the dedupe window.
func (f *fileState) lookupSeq(seq uint64) (int64, bool) {
	if seq == 0 {
		return 0, false
	}
	f.seqMu.Lock()
	defer f.seqMu.Unlock()
	off, ok := f.seqOff[seq]
	return off, ok
}

func (f *fileState) localSize() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// getInfo returns a copy of the file's metadata (which re-replication may
// rewrite at runtime).
func (f *fileState) getInfo() nameserver.FileInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.info
}

func (f *fileState) chunkSize() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.info.ChunkSize
}

// storage manages the on-disk chunk store.
type storage struct {
	root string

	mu    sync.Mutex
	files map[uuid.UUID]*fileState
}

// openStorage opens root, loading any files already on disk (this is also
// the recovery path the nameserver's rebuild scan depends on).
func openStorage(root string) (*storage, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("dataserver: create root: %w", err)
	}
	st := &storage{root: root, files: make(map[uuid.UUID]*fileState)}

	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("dataserver: scan root: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id, err := uuid.Parse(e.Name())
		if err != nil {
			continue // not a file directory
		}
		fs, err := st.loadFile(id)
		if err != nil {
			continue // torn create: skip, the nameserver never saw it
		}
		st.files[id] = fs
	}
	return st, nil
}

func (st *storage) dirOf(id uuid.UUID) string { return filepath.Join(st.root, id.String()) }

func (st *storage) chunkPath(id uuid.UUID, chunk int) string {
	return filepath.Join(st.dirOf(id), strconv.Itoa(chunk))
}

// loadFile reads a file's metadata and measures its local size from the
// chunk files.
func (st *storage) loadFile(id uuid.UUID) (*fileState, error) {
	body, err := os.ReadFile(filepath.Join(st.dirOf(id), metaFileName))
	if err != nil {
		return nil, err
	}
	var info nameserver.FileInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, err
	}
	if info.ChunkSize <= 0 {
		return nil, fmt.Errorf("dataserver: file %s has chunk size %d", id, info.ChunkSize)
	}
	var size int64
	for chunk := 1; ; chunk++ {
		fi, err := os.Stat(st.chunkPath(id, chunk))
		if err != nil {
			break
		}
		size += fi.Size()
	}
	return &fileState{info: info, size: size}, nil
}

// prepare creates the directory and metadata for a new file. Preparing an
// existing file with the same id is idempotent.
func (st *storage) prepare(info nameserver.FileInfo) error {
	if info.ChunkSize <= 0 {
		return fmt.Errorf("dataserver: chunk size %d", info.ChunkSize)
	}
	if info.ID.IsZero() {
		return errors.New("dataserver: zero file id")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.files[info.ID]; ok {
		return nil
	}
	dir := st.dirOf(info.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataserver: prepare: %w", err)
	}
	body, err := json.Marshal(info)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, metaFileName), body, 0o644); err != nil {
		return fmt.Errorf("dataserver: write meta: %w", err)
	}
	st.files[info.ID] = &fileState{info: info}
	return nil
}

func (st *storage) get(id uuid.UUID) (*fileState, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fs, ok := st.files[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownFile, id)
	}
	return fs, nil
}

// appendAt writes data at the given offset, which must equal the current
// local size (appends only; the check makes relayed appends idempotent to
// re-delivery and detects gaps). It returns the new local size.
func (st *storage) appendAt(id uuid.UUID, offset int64, data []byte) (int64, error) {
	fs, err := st.get(id)
	if err != nil {
		return 0, err
	}
	fs.appendMu.Lock()
	defer fs.appendMu.Unlock()
	return st.appendAtLocked(fs, id, offset, data)
}

// appendAtLocked is appendAt for callers already holding fs.appendMu (the
// primary holds it across the whole relay so concurrent appends see
// consistent offsets everywhere).
func (st *storage) appendAtLocked(fs *fileState, id uuid.UUID, offset int64, data []byte) (int64, error) {
	cur := fs.localSize()
	if offset != cur {
		if offset+int64(len(data)) <= cur {
			return cur, nil // duplicate delivery of an applied append
		}
		return cur, fmt.Errorf("%w: offset %d, local size %d", ErrOffsetGap, offset, cur)
	}

	fs.tailMu.Lock()
	defer fs.tailMu.Unlock()

	chunkSize := fs.chunkSize()
	pos := offset
	remaining := data
	for len(remaining) > 0 {
		chunk := int(pos/chunkSize) + 1
		within := pos % chunkSize
		room := chunkSize - within
		n := int64(len(remaining))
		if n > room {
			n = room
		}
		f, err := os.OpenFile(st.chunkPath(id, chunk), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fs.localSize(), fmt.Errorf("dataserver: open chunk %d: %w", chunk, err)
		}
		if _, err := f.Write(remaining[:n]); err != nil {
			f.Close()
			return fs.localSize(), fmt.Errorf("dataserver: write chunk %d: %w", chunk, err)
		}
		if err := f.Close(); err != nil {
			return fs.localSize(), fmt.Errorf("dataserver: close chunk %d: %w", chunk, err)
		}
		if err := st.updateChunkCRC(id, chunk, remaining[:n]); err != nil {
			return fs.localSize(), fmt.Errorf("dataserver: checksum chunk %d: %w", chunk, err)
		}
		pos += n
		remaining = remaining[n:]
	}

	fs.mu.Lock()
	fs.size = pos
	fs.mu.Unlock()
	return pos, nil
}

// readAt copies length bytes starting at offset into w. It returns the
// file's current local size (Mayflower dataservers include the file size
// with every read result so clients discover appended chunks, §3.3).
// Reads that touch the last chunk serialize against in-flight appends.
func (st *storage) readAt(id uuid.UUID, offset, length int64, w io.Writer) (int64, error) {
	fs, err := st.get(id)
	if err != nil {
		return 0, err
	}
	if offset < 0 || length < 0 {
		return fs.localSize(), fmt.Errorf("%w: offset %d length %d", ErrOutOfRange, offset, length)
	}

	size := fs.localSize()
	if offset+length > size {
		return size, fmt.Errorf("%w: [%d, %d) of %d", ErrOutOfRange, offset, offset+length, size)
	}
	// Lock the tail only if the range touches the final chunk.
	chunkSize := fs.chunkSize()
	lastChunk := int((size - 1) / chunkSize)
	endChunk := int((offset + length - 1) / chunkSize)
	if length > 0 && endChunk >= lastChunk {
		fs.tailMu.RLock()
		defer fs.tailMu.RUnlock()
	}

	pos := offset
	remaining := length
	for remaining > 0 {
		chunk := int(pos/chunkSize) + 1
		within := pos % chunkSize
		n := chunkSize - within
		if n > remaining {
			n = remaining
		}
		f, err := os.Open(st.chunkPath(id, chunk))
		if err != nil {
			return size, fmt.Errorf("dataserver: open chunk %d: %w", chunk, err)
		}
		if _, err := f.Seek(within, io.SeekStart); err != nil {
			f.Close()
			return size, fmt.Errorf("dataserver: seek chunk %d: %w", chunk, err)
		}
		if _, err := io.CopyN(w, f, n); err != nil {
			f.Close()
			return size, fmt.Errorf("dataserver: read chunk %d: %w", chunk, err)
		}
		f.Close()
		pos += n
		remaining -= n
	}
	return size, nil
}

// updateInfo rewrites a stored file's metadata (same id; e.g. a repaired
// replica set or a promoted primary after re-replication).
func (st *storage) updateInfo(info nameserver.FileInfo) error {
	fs, err := st.get(info.ID)
	if err != nil {
		return err
	}
	if info.ChunkSize != fs.chunkSize() {
		return fmt.Errorf("dataserver: cannot change chunk size of %s", info.ID)
	}
	body, err := json.Marshal(info)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(st.dirOf(info.ID), metaFileName), body, 0o644); err != nil {
		return fmt.Errorf("dataserver: rewrite meta: %w", err)
	}
	fs.mu.Lock()
	fs.info = info
	fs.mu.Unlock()
	return nil
}

// delete removes a file's directory and state. Unknown files are a no-op
// (the replica may never have been prepared).
func (st *storage) delete(id uuid.UUID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.files[id]; !ok {
		return nil
	}
	delete(st.files, id)
	return os.RemoveAll(st.dirOf(id))
}

// list reports every stored file with its local size, for the nameserver
// rebuild scan.
func (st *storage) list() []nameserver.FileRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]nameserver.FileRecord, 0, len(st.files))
	for _, fs := range st.files {
		out = append(out, nameserver.FileRecord{
			Info:           fs.getInfo(),
			LocalSizeBytes: fs.localSize(),
		})
	}
	return out
}
