package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); !approx(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %g, want %g", tt.give, got, tt.want)
			}
		})
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: 32/7.
	if got, want := Variance(xs), 32.0/7.0; !approx(got, want, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !approx(got, want, 1e-12) {
		t.Errorf("StdDev = %g, want %g", got, want)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance(single) = %g, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{-5, 15},
		{105, 50},
		{95, 48}, // 0.95*4 = 3.8 → 40 + 0.8*(50-40)
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !approx(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.841344746, 1.0},
		{0.025, -1.959964},
		{0.001, -3.090232},
	}
	for _, tt := range tests {
		if got := NormalQuantile(tt.p); !approx(got, tt.want, 1e-5) {
			t.Errorf("NormalQuantile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile endpoints not infinite")
	}
}

func TestTQuantile(t *testing.T) {
	// Reference values from standard t tables (two-sided 95% → p=0.975).
	tests := []struct {
		df   float64
		p    float64
		want float64
		tol  float64
	}{
		{1, 0.975, 12.7062, 1e-3},
		{2, 0.975, 4.30265, 1e-3},
		{5, 0.975, 2.57058, 5e-3},
		{10, 0.975, 2.22814, 2e-3},
		{30, 0.975, 2.04227, 1e-3},
		{100, 0.975, 1.98397, 1e-3},
		{10, 0.95, 1.81246, 2e-3},
		{10, 0.5, 0, 1e-12},
		{10, 0.025, -2.22814, 2e-3},
	}
	for _, tt := range tests {
		if got := TQuantile(tt.p, tt.df); !approx(got, tt.want, tt.tol) {
			t.Errorf("TQuantile(%g, %g) = %g, want %g", tt.p, tt.df, got, tt.want)
		}
	}
	if !math.IsNaN(TQuantile(0.975, 0)) {
		t.Error("TQuantile with df=0 should be NaN")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 8, 12, 10, 9, 11}
	mean, ci, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatalf("MeanCI: %v", err)
	}
	if !approx(mean, 10.2, 1e-9) {
		t.Errorf("mean = %g, want 10.2", mean)
	}
	if !(ci.Lo < mean && mean < ci.Hi) {
		t.Errorf("CI %v does not bracket mean %g", ci, mean)
	}
	// Hand computation: sd ≈ 1.3166, se ≈ 0.4163, t(9, .975) ≈ 2.262 →
	// half-width ≈ 0.9417.
	if hw := (ci.Hi - ci.Lo) / 2; !approx(hw, 0.9417, 5e-3) {
		t.Errorf("half-width = %g, want ≈0.9417", hw)
	}

	if _, _, err := MeanCI([]float64{1}, 0.95); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("MeanCI(single) err = %v, want ErrInsufficientData", err)
	}
	if _, _, err := MeanCI(xs, 1.5); err == nil {
		t.Error("MeanCI(confidence=1.5) should error")
	}
}

func TestRatioCI(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	num := make([]float64, 200)
	den := make([]float64, 200)
	for i := range num {
		num[i] = 30 + r.NormFloat64()*3
		den[i] = 10 + r.NormFloat64()*1
	}
	ratio, ci, err := RatioCI(num, den, 0.95)
	if err != nil {
		t.Fatalf("RatioCI: %v", err)
	}
	if !approx(ratio, 3, 0.15) {
		t.Errorf("ratio = %g, want ≈3", ratio)
	}
	if !(ci.Lo < ratio && ratio < ci.Hi) {
		t.Errorf("CI %v does not bracket ratio %g", ci, ratio)
	}
	if ci.Hi-ci.Lo > 1 {
		t.Errorf("CI %v implausibly wide", ci)
	}

	if _, _, err := RatioCI(num[:1], den, 0.95); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("RatioCI(short) err = %v, want ErrInsufficientData", err)
	}
	// Denominator indistinguishable from zero → no finite Fieller interval.
	noisy := []float64{1, -1, 1.5, -1.5}
	if _, _, err := RatioCI(num[:4], noisy, 0.95); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("RatioCI(zero-mean den) err = %v, want ErrInsufficientData", err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !approx(s.Mean, 3, 1e-12) {
		t.Errorf("Summarize = %+v", s)
	}
	if !approx(s.P95, 4.8, 1e-9) {
		t.Errorf("P95 = %g, want 4.8", s.P95)
	}
	var zero Summary
	if got := Summarize(nil); got != zero {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
}

// TestPercentileProperty checks order statistics stay within data bounds
// and are monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
			minV, maxV := xs[0], xs[0]
			for _, x := range xs {
				minV = math.Min(minV, x)
				maxV = math.Max(maxV, x)
			}
			if v < minV-1e-12 || v > maxV+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// TestTQuantileMonotone checks t-quantiles decrease toward the normal
// quantile as df grows.
func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, df := range []float64{3, 5, 10, 30, 100, 1000} {
		v := TQuantile(0.975, df)
		if v >= prev {
			t.Fatalf("TQuantile(0.975, %g) = %g, not decreasing (prev %g)", df, v, prev)
		}
		prev = v
	}
	if z := NormalQuantile(0.975); prev < z-1e-3 {
		t.Errorf("t-quantile %g fell below normal quantile %g", prev, z)
	}
}
