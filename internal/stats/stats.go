// Package stats provides the summary statistics the Mayflower evaluation
// reports: means, percentiles, Student-t confidence intervals for means
// (used in Figure 6), and Fieller confidence intervals for ratios of means
// (used for the normalized bars in Figures 4 and 5).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more samples than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator),
// or 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// MeanCI returns the mean of xs and its two-sided confidence interval at
// the given confidence level (e.g. 0.95), computed with the Student-t
// distribution as in the paper's Figure 6 error bars.
func MeanCI(xs []float64, confidence float64) (mean float64, ci Interval, err error) {
	if len(xs) < 2 {
		return 0, Interval{}, ErrInsufficientData
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, Interval{}, errors.New("stats: confidence must be in (0,1)")
	}
	mean = Mean(xs)
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	tcrit := TQuantile(1-(1-confidence)/2, float64(len(xs)-1))
	return mean, Interval{Lo: mean - tcrit*se, Hi: mean + tcrit*se}, nil
}

// RatioCI computes the ratio of means mean(num)/mean(den) together with a
// Fieller confidence interval for the ratio, assuming the two samples are
// independent (the paper's Figures 4 and 5 use "95% confidence interval
// calculated using Fieller's Method" on times normalized to Mayflower).
//
// With m_x = mean(num), m_y = mean(den), standard errors s_x, s_y and
// t the critical value, Fieller's interval for R = m_x/m_y is
//
//	( m_x*m_y ± sqrt( (m_x*m_y)^2 − (m_y²−t²s_y²)(m_x²−t²s_x²) ) ) / (m_y²−t²s_y²)
//
// The interval is only finite when the denominator mean is significantly
// non-zero (g = t²s_y²/m_y² < 1); otherwise ErrInsufficientData is
// returned.
func RatioCI(num, den []float64, confidence float64) (ratio float64, ci Interval, err error) {
	if len(num) < 2 || len(den) < 2 {
		return 0, Interval{}, ErrInsufficientData
	}
	mx, my := Mean(num), Mean(den)
	if my == 0 {
		return 0, Interval{}, ErrInsufficientData
	}
	sx2 := Variance(num) / float64(len(num))
	sy2 := Variance(den) / float64(len(den))
	// Welch-Satterthwaite degrees of freedom for the pair.
	df := welchDF(sx2, float64(len(num)), sy2, float64(len(den)))
	t := TQuantile(1-(1-confidence)/2, df)
	t2 := t * t

	g := t2 * sy2 / (my * my)
	if g >= 1 {
		return mx / my, Interval{}, ErrInsufficientData
	}
	a := my*my - t2*sy2
	b := mx * my
	c := mx*mx - t2*sx2
	disc := b*b - a*c
	if disc < 0 {
		disc = 0
	}
	root := math.Sqrt(disc)
	return mx / my, Interval{Lo: (b - root) / a, Hi: (b + root) / a}, nil
}

func welchDF(sx2, nx, sy2, ny float64) float64 {
	num := (sx2 + sy2) * (sx2 + sy2)
	den := sx2*sx2/(nx-1) + sy2*sy2/(ny-1)
	if den == 0 {
		return nx + ny - 2
	}
	return num / den
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution using Acklam's rational approximation (relative error
// below 1.15e-9 across (0,1)).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom, via the Cornish-Fisher-style expansion of the normal
// quantile (Abramowitz & Stegun 26.7.5). Accurate to ~1e-4 for df >= 3 and
// within a few percent for df in {1,2}, which is ample for confidence
// intervals on hundreds of samples.
func TQuantile(p, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	// Exact closed forms exist for one and two degrees of freedom.
	if df == 1 {
		return math.Tan(math.Pi * (p - 0.5))
	}
	if df == 2 {
		sign := 1.0
		pp := p
		if p < 0.5 {
			sign = -1
			pp = 1 - p
		}
		al := 2 * (1 - pp)
		return sign * 2 * (1 - al) / math.Sqrt(2*al*(2-al))
	}
	x := NormalQuantile(p)
	x2 := x * x
	g1 := (x2 + 1) * x / 4
	g2 := ((5*x2+16)*x2 + 3) * x / 96
	g3 := (((3*x2+19)*x2+17)*x2 - 15) * x / 384
	g4 := ((((79*x2+776)*x2+1482)*x2-1920)*x2 - 945) * x / 92160
	return x + g1/df + g2/(df*df) + g3/(df*df*df) + g4/(df*df*df*df)
}

// Summary bundles the statistics the experiment tables report for one
// sample of job completion times.
type Summary struct {
	N    int
	Mean float64
	P95  float64
	Min  float64
	Max  float64
	Std  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	minV, maxV := xs[0], xs[0]
	for _, x := range xs {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		P95:  Percentile(xs, 95),
		Min:  minV,
		Max:  maxV,
		Std:  StdDev(xs),
	}
}
