// Package writeplace implements Sinbad-like, network-aware replica
// placement for writes as a collaboration between the nameserver and the
// Flowserver — the extension §3.3 of the Mayflower paper sketches: "it
// would be relatively straightforward to implement a Sinbad-like replica
// placement strategy by having the nameserver make the placement decision
// collaboratively with the Flowserver."
//
// The FlowAware scorer plugs into nameserver.Service.SetPlacementScorer:
// when the nameserver places a new file's replicas, each candidate
// dataserver is scored by the Flowserver's estimate of the bandwidth a
// new flow *into* that host would get across the edge tier. Candidates
// behind congested downlinks or aggregation links score low and are
// avoided, while the nameserver's fault-domain constraints (distinct
// racks, pod spreading) continue to apply unchanged.
//
// Since the write path became network-scheduled, the estimate reflects
// write traffic too: clients register append ingest flows and primaries
// register replication fan-out flows with the Flowserver, so
// EstimateIngressShare sees in-flight writes on a candidate's downlinks,
// not just reads.
package writeplace

import (
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// FlowAware scores placement candidates by the Flowserver's ingress
// bandwidth estimate for their hosts.
type FlowAware struct {
	fs *flowserver.Server

	mu      sync.Mutex
	hosts   map[string]topology.NodeID
	unknown float64
}

var _ nameserver.PlacementScorer = (*FlowAware)(nil)

// New creates a scorer over a Flowserver and its topology.
func New(fs *flowserver.Server, topo *topology.Topology) *FlowAware {
	hosts := make(map[string]topology.NodeID, topo.NumHosts())
	for _, h := range topo.Hosts() {
		hosts[topo.Node(h).Name] = h
	}
	return &FlowAware{fs: fs, hosts: hosts}
}

// Score returns the estimated ingress bandwidth share for the candidate's
// host. Candidates on hosts the topology does not know score zero, so
// they are only chosen when nothing better exists.
func (f *FlowAware) Score(si nameserver.ServerInfo) float64 {
	f.mu.Lock()
	h, ok := f.hosts[si.Host]
	f.mu.Unlock()
	if !ok {
		return f.unknown
	}
	return f.fs.EstimateIngressShare(h)
}
