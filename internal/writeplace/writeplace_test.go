package writeplace

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// setup builds a 2-pod topology, a Flowserver, a nameserver with one
// dataserver per host, and the collaborative scorer.
func setup(t *testing.T) (*topology.Topology, *flowserver.Server, *nameserver.Service) {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: 100, EdgeAggLinkBps: 100, AggCoreLinkBps: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := flowserver.New(topo, flowserver.Options{})

	store, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	svc, err := nameserver.NewService(store, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range topo.Hosts() {
		node := topo.Node(h)
		err := svc.RegisterServer(nameserver.ServerInfo{
			ID:          fmt.Sprintf("ds-%02d", i),
			ControlAddr: fmt.Sprintf("10.0.0.%d:1", i),
			Host:        node.Name,
			Pod:         node.Pod,
			Rack:        node.Rack,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	svc.SetPlacementScorer(New(fs, topo))
	return topo, fs, svc
}

func TestEstimateIngressShareIdle(t *testing.T) {
	topo, fs, _ := setup(t)
	h := topo.HostAt(0, 0, 0)
	// Idle network: the share is the full downlink capacity.
	if got := fs.EstimateIngressShare(h); got != 100 {
		t.Errorf("idle ingress share = %g, want 100", got)
	}
}

func TestScorerAvoidsCongestedHost(t *testing.T) {
	topo, fs, svc := setup(t)

	// Congest one specific host's downlink: three reads converge on it.
	victim := topo.HostAt(0, 0, 0)
	for i := 0; i < 3; i++ {
		src := topo.HostAt(1, i%2, i%2)
		if _, err := fs.SelectPath(victim, src, 1e6); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.EstimateIngressShare(victim); got >= 100 {
		t.Fatalf("congested ingress share = %g, want < 100", got)
	}

	// The victim host must never be chosen as a primary now.
	victimName := topo.Node(victim).Name
	for i := 0; i < 60; i++ {
		fi, err := svc.Create(fmt.Sprintf("file-%d", i), nameserver.CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if fi.Replicas[0].Host == victimName {
			t.Fatalf("file %d placed its primary on the congested host", i)
		}
	}
}

func TestScorerKeepsFaultDomains(t *testing.T) {
	topo, _, svc := setup(t)
	byID := make(map[string]nameserver.ServerInfo)
	for _, si := range svc.Servers() {
		byID[si.ID] = si
	}
	_ = topo
	for i := 0; i < 50; i++ {
		fi, err := svc.Create(fmt.Sprintf("fd-%d", i), nameserver.CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p0 := byID[fi.Replicas[0].ServerID]
		p1 := byID[fi.Replicas[1].ServerID]
		p2 := byID[fi.Replicas[2].ServerID]
		if !(p0.Pod == p1.Pod && p0.Rack == p1.Rack) {
			t.Fatal("rack-pair constraint violated under collaborative placement")
		}
		if p2.Pod == p0.Pod && p2.Rack == p0.Rack {
			t.Fatal("third replica landed in the primary rack")
		}
	}
}

func TestScorerUnknownHost(t *testing.T) {
	_, fs, _ := setup(t)
	topo2, err := topology.New(topology.Config{
		Pods: 1, RacksPerPod: 1, HostsPerRack: 1, AggsPerPod: 1, Cores: 1,
		EdgeLinkBps: 1, EdgeAggLinkBps: 1, AggCoreLinkBps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := New(fs, topo2)
	if got := sc.Score(nameserver.ServerInfo{Host: "not-in-topology"}); got != 0 {
		t.Errorf("unknown host score = %g, want 0", got)
	}
}
