package testbed

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

// TestClusterShardedEndToEnd boots the deployment with the flow
// controller partitioned into two shards behind a directory, runs a
// cross-pod write + read (the read client sits in pod 1, the file's
// primary in pod 0, so both shards coordinate selections), and checks
// the sharded plane drained its per-shard flow tables.
func TestClusterShardedEndToEnd(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		Mode: ModeMayflower, Topo: tinyTopo(), Seed: 2, FlowShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.FlowserverAddr() != "" {
		t.Fatal("sharded cluster exposes a monolithic flowserver address")
	}
	if cluster.FlowDirectoryAddr() == "" {
		t.Fatal("sharded cluster has no directory address")
	}

	writer, err := cluster.Client(cluster.Topo.HostAt(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if _, err := writer.Create(ctx, "sharded-e2e", nameserver.CreateOptions{ChunkSize: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("mayflower!"), 20_000) // 200 KB
	if _, err := writer.Append(ctx, "sharded-e2e", payload); err != nil {
		t.Fatal(err)
	}

	reader, err := cluster.Client(cluster.Topo.HostAt(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := reader.ReadAll(ctx, "sharded-e2e")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read returned wrong bytes")
	}
	for k := 0; k < cluster.NumFlowShards(); k++ {
		if n := cluster.FlowShard(k).Server().NumFlows(); n != 0 {
			t.Errorf("shard %d still tracks %d flows", k, n)
		}
	}
	if n := cluster.Net.NumFlows(); n != 0 {
		t.Errorf("emunet still tracks %d flows", n)
	}
}

// TestClusterKillFlowShard kills the shard owning the reader's pod
// mid-lifetime: reads keep completing (degraded or re-routed to the
// promoted shard), and the directory's epoch records the failover.
func TestClusterKillFlowShard(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		Mode: ModeMayflower, Topo: tinyTopo(), Seed: 5, FlowShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	writer, err := cluster.Client(cluster.Topo.HostAt(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Create(ctx, "kill-shard", nameserver.CreateOptions{ChunkSize: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 8_192) // 128 KB
	if _, err := writer.Append(ctx, "kill-shard", payload); err != nil {
		t.Fatal(err)
	}

	// The reader lives in pod 1 — shard 1's territory under the initial
	// p mod 2 layout.
	reader, err := cluster.Client(cluster.Topo.HostAt(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reader.ReadAll(ctx, "kill-shard"); err != nil {
		t.Fatal(err)
	}

	epochBefore := cluster.FlowDirectory().Epoch()
	if err := cluster.KillFlowShard(1); err != nil {
		t.Fatal(err)
	}
	if err := cluster.KillFlowShard(1); err == nil {
		t.Error("double kill accepted")
	}
	if e := cluster.FlowDirectory().Epoch(); e != epochBefore+1 {
		t.Errorf("epoch after kill = %d, want %d", e, epochBefore+1)
	}
	if s, _, _, ok := cluster.FlowDirectory().Lookup(1); !ok || s != 0 {
		t.Errorf("pod 1 owner after kill = %d (ok=%v), want shard 0", s, ok)
	}

	// Reads must survive the kill: the client's cached route fails, it
	// re-resolves against the directory, and the promoted shard (or the
	// degraded locality path during the window) serves it.
	for i := 0; i < 3; i++ {
		got, err := reader.ReadAll(ctx, "kill-shard")
		if err != nil {
			t.Fatalf("read %d after shard kill: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("read %d after shard kill returned wrong bytes", i)
		}
	}
	// Writes route through the dataserver's directory route too.
	if _, err := writer.Append(ctx, "kill-shard", payload[:4096]); err != nil {
		t.Fatalf("append after shard kill: %v", err)
	}
}

// TestClusterShardedValidation: MultiReplica cannot ride a partitioned
// plane.
func TestClusterShardedValidation(t *testing.T) {
	_, err := NewCluster(ClusterConfig{
		Mode: ModeMayflower, Topo: tinyTopo(), Seed: 1,
		FlowShards: 2, MultiReplica: true,
	})
	if err == nil {
		t.Fatal("MultiReplica + FlowShards accepted")
	}
}
