package testbed

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/stats"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// ExperimentConfig parameterizes one prototype run (one bar group of
// Figure 8).
type ExperimentConfig struct {
	// Mode is the filesystem configuration under test.
	Mode Mode
	// Topo is the emulated topology; ScaledTestbed() if zero.
	Topo topology.Config
	// Lambda is the Poisson arrival rate per server per second, in the
	// scaled timebase.
	Lambda float64
	// NumJobs / WarmupJobs control run length; warmup jobs are excluded
	// from statistics.
	NumJobs    int
	WarmupJobs int
	// NumFiles is the catalog size; FileBytes the per-file read size.
	NumFiles  int
	FileBytes int64
	// Replication is the replica count per file.
	Replication int
	// Locality is the staggered client placement distribution.
	Locality workload.Locality
	// Seed drives all randomness.
	Seed int64
	// MultiReplica enables §4.3 split reads (ModeMayflower only).
	MultiReplica bool
	// Verify re-checks every read's payload length.
	Verify bool
	// Metrics, when non-nil, receives the run's cluster metrics and
	// drift audit (see ClusterConfig.Metrics). Sharing one registry
	// across runs accumulates drift histograms; plain server counters
	// are re-registered per run and reflect the latest one.
	Metrics *obs.Registry
}

// DefaultExperiment returns a scaled Figure 8 configuration for a mode.
func DefaultExperiment(mode Mode) ExperimentConfig {
	return ExperimentConfig{
		Mode: mode,
		// The scaled testbed compresses time: a 1 MB read over a lone
		// 64 Mbps edge link takes 125 ms (versus ~2 s for 256 MB at
		// 1 Gbps in the paper), and λ is raised so the hot files reach
		// the same utilization the paper's workload produces.
		Lambda:      2.5,
		NumJobs:     140,
		WarmupJobs:  20,
		NumFiles:    40,
		FileBytes:   1 << 20,
		Replication: 3,
		Locality:    workload.LocalityRackHeavy,
		Seed:        1,
	}
}

// ExperimentResult is one prototype run's outcome.
type ExperimentResult struct {
	Mode Mode
	// CompletionTimes holds per-job wall-clock completion times in
	// seconds, warmup excluded.
	CompletionTimes []float64
	Summary         stats.Summary
	// Errors counts failed reads (must be zero for a valid run).
	Errors int
}

// RunExperiment boots a cluster in the configured mode, loads the file
// catalog, replays the synthetic read trace against it in real time, and
// reports completion-time statistics.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	if cfg.NumJobs <= 0 || cfg.WarmupJobs < 0 || cfg.WarmupJobs >= cfg.NumJobs {
		return nil, fmt.Errorf("testbed: bad job counts %d/%d", cfg.NumJobs, cfg.WarmupJobs)
	}
	if cfg.FileBytes <= 0 || cfg.NumFiles <= 0 {
		return nil, fmt.Errorf("testbed: bad catalog %d×%d", cfg.NumFiles, cfg.FileBytes)
	}
	cluster, err := NewCluster(ClusterConfig{
		Mode:         cfg.Mode,
		Topo:         cfg.Topo,
		Seed:         cfg.Seed,
		MultiReplica: cfg.MultiReplica,
		Metrics:      cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	cat, err := workload.NewCatalog(cluster.Topo, rng, workload.CatalogConfig{
		NumFiles:    cfg.NumFiles,
		SizeBits:    float64(cfg.FileBytes) * 8,
		Replication: cfg.Replication,
		Placement:   workload.PlacementPaperEval,
	})
	if err != nil {
		return nil, err
	}
	if err := loadCatalog(cluster, cat, cfg.FileBytes); err != nil {
		return nil, err
	}
	jobs, err := workload.Generate(cluster.Topo, rng, cat, workload.TraceConfig{
		LambdaPerServer: cfg.Lambda,
		NumJobs:         cfg.NumJobs,
		ZipfSkew:        1.1,
		Locality:        cfg.Locality,
	})
	if err != nil {
		return nil, err
	}
	return replay(cluster, cfg, jobs)
}

func fileName(i int) string { return fmt.Sprintf("bench/file-%04d", i) }

// loadCatalog creates every catalog file in the DFS with its placement
// pinned to the catalog's replica hosts, and fills it with data.
func loadCatalog(cluster *Cluster, cat *workload.Catalog, fileBytes int64) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	payload := make([]byte, fileBytes)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	for _, f := range cat.Files {
		// Write through a client co-located with the primary so loading
		// does not cross the emulated network's pacing path.
		cl, err := cluster.Client(f.Replicas[0])
		if err != nil {
			return err
		}
		servers := make([]string, len(f.Replicas))
		for j, h := range f.Replicas {
			servers[j] = cluster.ServerID(h)
		}
		name := fileName(f.Index)
		if _, err := cl.Create(ctx, name, nameserver.CreateOptions{
			ChunkSize:         fileBytes,
			PreferredReplicas: servers,
		}); err != nil {
			return fmt.Errorf("create %s: %w", name, err)
		}
		if _, err := cl.Append(ctx, name, payload); err != nil {
			return fmt.Errorf("fill %s: %w", name, err)
		}
	}
	return nil
}

// replay fires each job at its trace time and waits for all of them.
func replay(cluster *Cluster, cfg ExperimentConfig, jobs []workload.Job) (*ExperimentResult, error) {
	type outcome struct {
		job      workload.Job
		duration float64
		err      error
	}
	results := make([]outcome, len(jobs))
	var wg sync.WaitGroup
	start := time.Now()

	for i := range jobs {
		job := jobs[i]
		i := i
		cl, err := cluster.Client(job.Client)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		due := start.Add(time.Duration(job.Time * float64(time.Second)))
		time.AfterFunc(time.Until(due), func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			t0 := time.Now()
			data, err := cl.ReadAll(ctx, fileName(job.FileIndex))
			d := time.Since(t0).Seconds()
			if err == nil && cfg.Verify && int64(len(data)) != cfg.FileBytes {
				err = fmt.Errorf("testbed: read %d bytes, want %d", len(data), cfg.FileBytes)
			}
			results[i] = outcome{job: job, duration: d, err: err}
		})
	}
	wg.Wait()

	res := &ExperimentResult{Mode: cfg.Mode}
	sort.Slice(results, func(i, j int) bool { return results[i].job.ID < results[j].job.ID })
	for _, r := range results {
		if r.err != nil {
			res.Errors++
			continue
		}
		if r.job.ID >= cfg.WarmupJobs {
			res.CompletionTimes = append(res.CompletionTimes, r.duration)
		}
	}
	res.Summary = stats.Summarize(res.CompletionTimes)
	if res.Errors > 0 {
		return res, fmt.Errorf("testbed: %d of %d reads failed", res.Errors, len(jobs))
	}
	return res, nil
}
