// Package testbed assembles a full in-process Mayflower deployment over
// the emulated datacenter network: SDN switches and controller, the
// Flowserver running as a controller application, a nameserver, one
// dataserver per host, and per-host clients. It is the prototype half of
// the paper's evaluation (§6.1, §6.7) — the stand-in for the authors'
// 13-machine Mininet testbed — and drives Figure 8's comparison of
// Mayflower against HDFS with and without network flow scheduling.
//
// Everything is real: RPCs cross loopback TCP sockets, chunk data lives
// in real files, reads stream real bytes, the Flowserver polls real
// switch byte counters over the OpenFlow-style control protocol. Only
// link bandwidth is emulated, by pacing each read flow at the max-min
// fair share of the topology's links (package emunet) — the property the
// paper obtained from Mininet's link shaping.
package testbed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/client"
	"github.com/mayflower-dfs/mayflower/internal/dataserver"
	"github.com/mayflower-dfs/mayflower/internal/emunet"
	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/flowctl"
	"github.com/mayflower-dfs/mayflower/internal/flowserver"
	"github.com/mayflower-dfs/mayflower/internal/hdfsbaseline"
	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/sdn"
	"github.com/mayflower-dfs/mayflower/internal/selection"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// Mode selects the filesystem configuration under test (Figure 8).
type Mode int

// Figure 8 modes.
const (
	// ModeMayflower is the full co-design: joint replica and path
	// selection by the Flowserver.
	ModeMayflower Mode = iota + 1
	// ModeHDFSMayflower uses HDFS's rack-aware replica selection with
	// Mayflower's network flow scheduler choosing the path.
	ModeHDFSMayflower
	// ModeHDFSECMP uses HDFS's rack-aware replica selection with ECMP
	// paths: the conventional deployment.
	ModeHDFSECMP
)

// String names the mode as Figure 8 labels it.
func (m Mode) String() string {
	switch m {
	case ModeMayflower:
		return "Mayflower"
	case ModeHDFSMayflower:
		return "HDFS-Mayflower"
	case ModeHDFSECMP:
		return "HDFS-ECMP"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ScaledTestbed returns a laptop-scale version of the paper's testbed: 16
// hosts in 2 pods × 2 racks × 4 hosts with the same 2:1 edge and 8:1
// core-to-rack oversubscription, at 64 Mbps edge links so a full sweep
// finishes in seconds. Completion-time ratios between modes are invariant
// to this joint (size, rate) scaling; see DESIGN.md.
func ScaledTestbed() topology.Config {
	edge := topology.Mbps(64)
	return topology.Config{
		Pods:         2,
		RacksPerPod:  2,
		HostsPerRack: 4,
		AggsPerPod:   2,
		Cores:        2,
		EdgeLinkBps:  edge,
		// Rack host bandwidth 1024 Mbps over two uplinks at 2:1.
		EdgeAggLinkBps: edge,
		// Pod host bandwidth 2048 Mbps over four agg-core links at 8:1
		// overall.
		AggCoreLinkBps: edge / 4,
	}
}

// Cluster is a running deployment.
type Cluster struct {
	Topo *topology.Topology
	Net  *emunet.Network

	// admit is the fabric handle the control plane admits flows through;
	// everything outside boot speaks this interface, not emunet.
	admit fabric.Admitter
	clock fabric.Clock

	mode          Mode
	controller    *sdn.Controller
	switches      []*sdn.Switch
	bridge        *sdn.CounterBridge
	statsInterval time.Duration
	fs            *flowserver.Server
	fsAddr        string

	// Sharded control plane (ClusterConfig.FlowShards > 1): one flowctl
	// shard per wire endpoint, a shard directory, and the pool carrying
	// shard-to-shard ctl.* traffic. fs stays nil in this mode.
	flowShards []*flowctl.Shard
	shardSrvs  []*wire.Server
	shardAddrs []string
	flowDir    *flowctl.Directory
	dirSrv     *wire.Server
	dirAddr    string
	shardPool  *rpc.Pool
	shardMu    sync.Mutex
	shardDead  []bool
	nsSvc      *nameserver.Service
	nsStore    *kvstore.Store
	nsSrv      *wire.Server
	nsAddr     string
	fsSrv      *wire.Server
	servers    map[string]*dataserver.Server // host name → dataserver
	serverIDs  map[topology.NodeID]string    // host node → server id
	workDir    string
	ownWorkDir bool

	pollStop chan struct{}
	pollDone chan struct{}

	// Observability (nil unless ClusterConfig.Metrics was set). tracked
	// mirrors the Flowserver's live assignments so the poll loop can
	// audit estimate-vs-truth drift against the emulated fabric.
	reg     *obs.Registry
	audit   *obs.DriftAuditor
	trackMu sync.Mutex
	tracked map[flowserver.FlowID]struct{}

	ecmp   *selection.ECMP
	nextID atomic.Uint64

	mu      sync.Mutex
	clients map[string]*client.Client
	extra   []*client.Client
	rng     *rand.Rand
	closed  bool
}

// ClusterConfig configures NewCluster.
type ClusterConfig struct {
	// Mode selects the Figure 8 configuration.
	Mode Mode
	// Topo is the emulated topology; ScaledTestbed() if zero.
	Topo topology.Config
	// WorkDir holds chunk stores and the nameserver database; a fresh
	// temporary directory (removed on Close) if empty.
	WorkDir string
	// StatsInterval is the Flowserver's switch polling period
	// (250 ms if zero; the scaled testbed compresses time ~8x relative
	// to the paper's testbed, which polled at seconds granularity).
	StatsInterval time.Duration
	// Seed drives placement and selection randomness.
	Seed int64
	// MultiReplica enables §4.3 split reads (ModeMayflower only).
	MultiReplica bool
	// FlowShards partitions the Flowserver into N flowctl shards, each
	// serving its own RPC endpoint, with a shard directory that clients
	// and dataservers resolve pod ownership through (epoch-checked
	// re-routing). 0 or 1 keeps the monolithic Flowserver; only the
	// flow-scheduled modes use it. Incompatible with MultiReplica.
	FlowShards int
	// HeartbeatInterval is how often dataservers report liveness
	// (dataserver default if zero). Fault-injection tests shrink it so
	// death detection fits in test time.
	HeartbeatInterval time.Duration
	// Speedup compresses the emulated network's clock: pacing, the
	// Flowserver's notion of time, and stats polling all run Speedup
	// times faster than the wall clock, with the fabric-time behaviour
	// unchanged. <= 0 or unset means real time.
	Speedup float64
	// Metrics, when non-nil, receives the deployment's counters: the
	// Flowserver's selection/poll metrics, the emulated fabric's
	// reallocation metrics, each dataserver's write-path and per-peer
	// control-plane RPC counters ("dataserver.<id>.rpc.peer.<addr>.*"),
	// and (merged in on Close, under "testbed.drift.*") a flow-model
	// drift audit comparing the Flowserver's bandwidth estimates against
	// the fabric's true fair shares on every stats poll.
	Metrics *obs.Registry
}

// NewCluster boots a deployment and blocks until every component is
// connected and registered.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeMayflower
	}
	if cfg.Topo.Pods == 0 {
		cfg.Topo = ScaledTestbed()
	}
	if cfg.StatsInterval == 0 {
		cfg.StatsInterval = 250 * time.Millisecond
	}
	topo, err := topology.New(cfg.Topo)
	if err != nil {
		return nil, err
	}
	net := emunet.NewWithClock(topo, fabric.NewScaledClock(cfg.Speedup))
	// The polling period is configured in fabric seconds; under a
	// compressed clock the wall-clock ticker shrinks to match.
	wallPoll := cfg.StatsInterval
	if cfg.Speedup > 1 {
		wallPoll = time.Duration(float64(wallPoll) / cfg.Speedup)
	}
	c := &Cluster{
		Topo:          topo,
		Net:           net,
		admit:         net,
		clock:         net.Clock(),
		mode:          cfg.Mode,
		statsInterval: wallPoll,
		servers:       make(map[string]*dataserver.Server),
		serverIDs:     make(map[topology.NodeID]string),
		clients:       make(map[string]*client.Client),
		rng:           rand.New(rand.NewSource(cfg.Seed + 1)),
		pollStop:      make(chan struct{}),
		pollDone:      make(chan struct{}),
		workDir:       cfg.WorkDir,
		reg:           cfg.Metrics,
	}
	if c.reg != nil {
		net.AttachMetrics(c.reg)
		c.audit = obs.NewDriftAuditor()
		c.tracked = make(map[flowserver.FlowID]struct{})
	}
	if c.workDir == "" {
		dir, err := os.MkdirTemp("", "mayflower-testbed-*")
		if err != nil {
			return nil, err
		}
		c.workDir = dir
		c.ownWorkDir = true
	}
	if err := c.boot(cfg); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Cluster) boot(cfg ClusterConfig) error {
	// SDN control plane: a switch agent per topology switch, all dialed
	// into one controller.
	c.controller = sdn.NewController()
	ctlAddr, err := c.controller.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	c.bridge = sdn.NewCounterBridge(c.Topo)
	switchNodes := append(append(c.Topo.EdgeSwitches(), c.Topo.AggSwitches()...), c.Topo.CoreSwitches()...)
	for _, node := range switchNodes {
		sw := sdn.NewSwitch(uint64(node))
		if err := sw.Connect(ctlAddr.String()); err != nil {
			return err
		}
		if err := c.bridge.Attach(node, sw); err != nil {
			return err
		}
		c.switches = append(c.switches, sw)
	}
	c.Net.SetCounterSink(c.bridge)
	deadline := time.Now().Add(10 * time.Second)
	for len(c.controller.Switches()) < len(switchNodes) {
		if time.Now().After(deadline) {
			return errors.New("testbed: switches did not connect")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Nameserver.
	store, err := kvstore.Open(c.workDir+"/nameserver", kvstore.Options{})
	if err != nil {
		return err
	}
	c.nsStore = store
	c.nsSvc, err = nameserver.NewService(store, rand.New(rand.NewSource(cfg.Seed+2)))
	if err != nil {
		return err
	}
	c.nsSrv = wire.NewServer()
	if err := nameserver.RegisterRPC(c.nsSrv, c.nsSvc); err != nil {
		return err
	}
	nsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go c.nsSrv.Serve(nsLn) //nolint:errcheck // Serve returns on Close
	c.nsAddr = nsLn.Addr().String()

	// Flowserver (controller application), for the modes that use it.
	if c.mode == ModeMayflower || c.mode == ModeHDFSMayflower {
		if cfg.FlowShards > 1 {
			if err := c.bootShardedFlowplane(cfg); err != nil {
				return err
			}
			go c.pollLoop(c.statsInterval)
		} else {
			c.fs = flowserver.New(c.Topo, flowserver.Options{
				MultiReplica: cfg.MultiReplica && c.mode == ModeMayflower,
				Now:          c.nowSeconds,
				Metrics:      c.reg,
			})
			c.fsSrv = wire.NewServer()
			if err := flowserver.RegisterRPC(c.fsSrv, c.fs, c.Topo, c.flowHooks()); err != nil {
				return err
			}
			fsLn, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go c.fsSrv.Serve(fsLn) //nolint:errcheck // Serve returns on Close
			c.fsAddr = fsLn.Addr().String()
			go c.pollLoop(c.statsInterval)
		}
	} else {
		close(c.pollDone)
		c.ecmp = selection.NewECMP(c.Topo)
	}

	// One dataserver per host.
	for i, h := range c.Topo.Hosts() {
		node := c.Topo.Node(h)
		id := fmt.Sprintf("ds-%02d", i)
		ds, err := dataserver.New(dataserver.Config{
			ID:                id,
			Root:              fmt.Sprintf("%s/%s", c.workDir, id),
			Host:              node.Name,
			Pod:               node.Pod,
			Rack:              node.Rack,
			Pacer:             c.Net,
			HeartbeatInterval: cfg.HeartbeatInterval,
			Metrics:           c.reg,
			// Empty for the ECMP modes: relays fall back to static order,
			// the conventional unscheduled write path.
			FlowserverAddr: c.fsAddr,
			// Sharded control plane: the primary resolves the shard owning
			// its pod through the directory (fsAddr stays empty).
			FlowDirectoryAddr: c.dirAddr,
		})
		if err != nil {
			return err
		}
		ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ds.Close()
			return err
		}
		dataLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ds.Close()
			return err
		}
		if err := ds.Start(ctlLn, dataLn, c.nsAddr); err != nil {
			ds.Close()
			return err
		}
		c.servers[node.Name] = ds
		c.serverIDs[h] = id
	}
	return nil
}

// nowSeconds is the deployment's time base: the fabric clock, so the
// Flowserver's freeze horizons and stats timestamps stay consistent with
// pacing even under a compressed clock.
func (c *Cluster) nowSeconds() float64 { return c.clock.Now() }

// flowHooks bridges selection commits into the emulated fabric and the
// switches' flow tables; shared by the monolithic server and every
// shard (a cross-shard selection still returns one full-path assignment
// from its coordinator, so each flow registers exactly once).
func (c *Cluster) flowHooks() flowserver.Hooks {
	return flowserver.Hooks{
		OnAssign: func(a flowserver.Assignment) {
			_ = c.admit.RegisterFlow(uint64(a.FlowID), a.Path)
			c.trackFlow(a.FlowID, true)
			c.installRules(a)
		},
		OnFinish: func(id flowserver.FlowID) {
			c.admit.UnregisterFlow(uint64(id))
			c.trackFlow(id, false)
		},
	}
}

// bootShardedFlowplane boots cfg.FlowShards flowctl shards, each with
// its own wire endpoint (fs.* selection surface plus the ctl.* peer
// channel), a shard directory endpoint, and the RPC links shards pull
// each other's digests over. Everything crosses loopback TCP, as the
// testbed ethos demands.
func (c *Cluster) bootShardedFlowplane(cfg ClusterConfig) error {
	if cfg.MultiReplica {
		return errors.New("testbed: MultiReplica needs a single flow shard (§4.3 splitting is not partitioned)")
	}
	n := cfg.FlowShards
	dir, err := flowctl.NewDirectory(c.Topo.Config().Pods, n)
	if err != nil {
		return err
	}
	c.flowDir = dir
	c.dirSrv = wire.NewServer()
	if err := flowctl.RegisterDirectoryRPC(c.dirSrv, dir, c.nowSeconds); err != nil {
		return err
	}
	dirLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go c.dirSrv.Serve(dirLn) //nolint:errcheck // Serve returns on Close
	c.dirAddr = dirLn.Addr().String()

	c.shardPool = rpc.NewPool(rpc.Options{})
	met := flowctl.NewMetrics()
	if c.reg != nil {
		met.Register(c.reg)
	}
	owner, epoch := dir.Owners()
	c.shardDead = make([]bool, n)
	for k := 0; k < n; k++ {
		s, err := flowctl.NewShard(c.Topo, flowctl.ShardConfig{
			Index:   k,
			Shards:  n,
			Owner:   owner,
			Epoch:   epoch,
			Now:     c.nowSeconds,
			Metrics: met,
		})
		if err != nil {
			return err
		}
		srv := wire.NewServer()
		if err := flowserver.RegisterRPC(srv, s, c.Topo, c.flowHooks()); err != nil {
			return err
		}
		if err := flowctl.RegisterShardRPC(srv, s, c.nowSeconds); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
		c.flowShards = append(c.flowShards, s)
		c.shardSrvs = append(c.shardSrvs, srv)
		c.shardAddrs = append(c.shardAddrs, ln.Addr().String())
		// Register the endpoint under an effectively unbounded lease:
		// the testbed kills shards explicitly (KillFlowShard), it does
		// not simulate silent heartbeat loss.
		if _, err := dir.Heartbeat(k, ln.Addr().String(), c.nowSeconds(), 1e18); err != nil {
			return err
		}
	}
	for k, s := range c.flowShards {
		links := make([]flowctl.ShardLink, n)
		for j := 0; j < n; j++ {
			if j != k {
				links[j] = flowctl.NewRPCShardLink(c.shardPool.Peer(c.shardAddrs[j]), nil)
			}
		}
		s.SetPeers(links)
	}
	return nil
}

// installRules pushes the assignment's path into the switches' flow
// tables (each switch on the path forwards the flow out of the next
// link's port).
func (c *Cluster) installRules(a flowserver.Assignment) {
	for _, l := range a.Path {
		link := c.Topo.Link(l)
		if c.Topo.Node(link.From).Kind == topology.KindHost {
			continue
		}
		_ = c.controller.InstallFlow(uint64(link.From), uint64(a.FlowID), uint32(l))
	}
}

// pollLoop periodically feeds switch flow counters to the Flowserver
// through the shared stats seam.
func (c *Cluster) pollLoop(interval time.Duration) {
	defer close(c.pollDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.pollStop:
			return
		case <-ticker.C:
		}
		if c.fs != nil {
			c.fs.PollFrom(c.nowSeconds(), c)
		} else {
			c.pollShards(c.nowSeconds())
		}
		c.auditDrift()
	}
}

// pollShards runs one stats cycle of the sharded plane: every live
// shard ingests the poll batch, then pulls its peers' digests over the
// ctl.* links in shard-index order — the cadence that bounds cross-pod
// staleness to one poll interval.
func (c *Cluster) pollShards(now float64) {
	batch := c.FlowStats()
	c.shardMu.Lock()
	dead := append([]bool(nil), c.shardDead...)
	c.shardMu.Unlock()
	for k, s := range c.flowShards {
		if !dead[k] {
			s.Server().UpdateFlowStats(now, batch)
		}
	}
	for k, s := range c.flowShards {
		if !dead[k] {
			s.RefreshDigests()
		}
	}
}

// trackFlow records a live assignment for drift auditing (no-op when
// metrics are off).
func (c *Cluster) trackFlow(id flowserver.FlowID, live bool) {
	if c.tracked == nil {
		return
	}
	c.trackMu.Lock()
	defer c.trackMu.Unlock()
	if live {
		c.tracked[id] = struct{}{}
	} else {
		delete(c.tracked, id)
	}
}

// auditDrift compares the Flowserver's post-poll bandwidth estimate for
// every live flow against the emulated fabric's true fair share. The
// fabric flow id equals the Flowserver's (see the OnAssign hook).
func (c *Cluster) auditDrift() {
	if c.audit == nil {
		return
	}
	c.trackMu.Lock()
	ids := make([]flowserver.FlowID, 0, len(c.tracked))
	for id := range c.tracked {
		ids = append(ids, id)
	}
	c.trackMu.Unlock()
	for _, id := range ids {
		est, ok := c.estimatedBW(id)
		if !ok {
			continue
		}
		truth, _ := c.Net.FlowRate(uint64(id))
		c.audit.Record(est, truth)
	}
}

// estimatedBW asks the model tracking a flow for its current estimate:
// the monolithic server, or the flow-id-striped coordinator shard.
func (c *Cluster) estimatedBW(id flowserver.FlowID) (float64, bool) {
	if c.fs != nil {
		return c.fs.EstimatedBW(id)
	}
	k := int((int64(id) - 1) % int64(len(c.flowShards)))
	return c.flowShards[k].Server().EstimatedBW(id)
}

// FlowStats implements flowserver.StatsSource by querying the edge
// switches' flow byte counters over the OpenFlow-style control protocol,
// exactly as §3.3.3 describes ("flow stats are collected for only those
// flows that originate from dataservers attached to the edge switch
// being queried").
func (c *Cluster) FlowStats() []flowserver.FlowStat {
	ctx, cancel := context.WithTimeout(context.Background(), c.statsInterval)
	defer cancel()
	byFlow := make(map[flowserver.FlowID]float64)
	for _, edge := range c.Topo.EdgeSwitches() {
		stats, err := c.controller.FlowStats(ctx, uint64(edge))
		if err != nil {
			continue
		}
		for _, st := range stats {
			id := flowserver.FlowID(st.FlowID)
			bits := float64(st.ByteCount) * 8
			if bits > byFlow[id] {
				byFlow[id] = bits
			}
		}
	}
	batch := make([]flowserver.FlowStat, 0, len(byFlow))
	for id, bits := range byFlow {
		batch = append(batch, flowserver.FlowStat{ID: id, TransferredBits: bits})
	}
	return batch
}

// NameserverAddr returns the nameserver's RPC address.
func (c *Cluster) NameserverAddr() string { return c.nsAddr }

// FlowserverAddr returns the Flowserver's RPC address ("" for ECMP mode
// and for the sharded plane, which routes through the directory).
func (c *Cluster) FlowserverAddr() string { return c.fsAddr }

// FlowDirectoryAddr returns the shard directory's RPC address ("" unless
// the cluster booted with FlowShards > 1).
func (c *Cluster) FlowDirectoryAddr() string { return c.dirAddr }

// NumFlowShards returns the sharded plane's shard count (0 when the
// cluster runs the monolithic Flowserver).
func (c *Cluster) NumFlowShards() int { return len(c.flowShards) }

// FlowShard exposes shard k for test assertions.
func (c *Cluster) FlowShard(k int) *flowctl.Shard { return c.flowShards[k] }

// FlowDirectory exposes the shard directory for test assertions.
func (c *Cluster) FlowDirectory() *flowctl.Directory { return c.flowDir }

// KillFlowShard abruptly stops flow shard k — its wire endpoint closes
// mid-conversation for any in-flight callers — and marks it dead in the
// directory, which promotes its pods to the next live shard under a
// bumped epoch. Surviving shards adopt the new ownership map at once;
// clients and dataservers discover it when their cached routes fail or
// their TTLs lapse. The shard stays down for the cluster's lifetime.
func (c *Cluster) KillFlowShard(k int) error {
	if k < 0 || k >= len(c.flowShards) {
		return fmt.Errorf("testbed: no flow shard %d", k)
	}
	c.shardMu.Lock()
	if c.shardDead[k] {
		c.shardMu.Unlock()
		return fmt.Errorf("testbed: flow shard %d already dead", k)
	}
	c.shardDead[k] = true
	c.shardMu.Unlock()
	c.shardSrvs[k].Close()
	epoch, changed := c.flowDir.MarkDead(k)
	if !changed {
		return nil
	}
	owner, _ := c.flowDir.Owners()
	for j, s := range c.flowShards {
		if j != k {
			s.SetOwners(owner, epoch)
		}
	}
	return nil
}

// ServerID returns the dataserver id running on a topology host.
func (c *Cluster) ServerID(h topology.NodeID) string { return c.serverIDs[h] }

// Client returns (creating on first use) a filesystem client running on
// the given topology host, configured for the cluster's mode.
func (c *Cluster) Client(host topology.NodeID) (*client.Client, error) {
	name := c.Topo.Node(host).Name
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.clients[name]; ok {
		return cl, nil
	}
	cl, err := client.New(c.clientOptionsLocked(name))
	if err != nil {
		return nil, err
	}
	c.clients[name] = cl
	return cl, nil
}

// ClientOptions returns the client options the cluster would use for a
// client on the given host, so harnesses can tweak them (fault-injection
// dialers, shorter timeouts) and build their own clients via NewClient.
func (c *Cluster) ClientOptions(host topology.NodeID) client.Options {
	name := c.Topo.Node(host).Name
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clientOptionsLocked(name)
}

func (c *Cluster) clientOptionsLocked(name string) client.Options {
	opts := client.Options{
		NameserverAddr: c.nsAddr,
		Host:           name,
		Rand:           rand.New(rand.NewSource(c.rng.Int63())),
		// Lease expiry must tick in fabric time: under a compressed clock
		// a wall-clock TTL would effectively shrink by the speedup factor.
		Clock: c.clock,
	}
	switch c.mode {
	case ModeMayflower:
		opts.FlowserverAddr = c.fsAddr
		opts.FlowDirectoryAddr = c.dirAddr
	case ModeHDFSMayflower:
		opts.FlowserverAddr = c.fsAddr
		opts.FlowDirectoryAddr = c.dirAddr
		opts.PickReplica = hdfsbaseline.RackAwarePicker(name, hdfsbaseline.NameLocator, opts.Rand)
	case ModeHDFSECMP:
		opts.PickReplica = hdfsbaseline.RackAwarePicker(name, hdfsbaseline.NameLocator, opts.Rand)
		opts.AssignFlow = func(replicaHost string, _ int64) (uint64, func()) {
			return c.assignECMPFlow(replicaHost, name)
		}
	}
	return opts
}

// NewClient builds an extra client with the cluster's options for the
// host after applying mutate (nil for stock options). Unlike Client, the
// result is not shared or cached, but it is closed with the cluster.
func (c *Cluster) NewClient(host topology.NodeID, mutate func(*client.Options)) (*client.Client, error) {
	name := c.Topo.Node(host).Name
	c.mu.Lock()
	opts := c.clientOptionsLocked(name)
	c.mu.Unlock()
	if mutate != nil {
		mutate(&opts)
	}
	cl, err := client.New(opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.extra = append(c.extra, cl)
	c.mu.Unlock()
	return cl, nil
}

// NameserverService exposes the in-process nameserver for liveness
// inspection and repair passes.
func (c *Cluster) NameserverService() *nameserver.Service { return c.nsSvc }

// DataserverAddrs returns the control and data endpoint addresses of the
// dataserver on the named host, so fault injectors can map dial targets
// back to topology locations.
func (c *Cluster) DataserverAddrs(hostName string) (ctlAddr, dataAddr string, err error) {
	ds, ok := c.servers[hostName]
	if !ok {
		return "", "", fmt.Errorf("testbed: no dataserver on host %q", hostName)
	}
	return ds.ControlAddr(), ds.DataAddr(), nil
}

// KillDataserver abruptly stops the dataserver on the named host
// (severing in-flight reads and stopping heartbeats) and returns its
// server id. The process stays down for the cluster's lifetime — the
// repair path, not a restart, restores replication.
func (c *Cluster) KillDataserver(hostName string) (string, error) {
	ds, ok := c.servers[hostName]
	if !ok {
		return "", fmt.Errorf("testbed: no dataserver on host %q", hostName)
	}
	var id string
	for node, sid := range c.serverIDs {
		if c.Topo.Node(node).Name == hostName {
			id = sid
		}
	}
	return id, ds.Close()
}

// assignECMPFlow registers an ECMP-selected path for a transfer from
// replicaHost to clientHost with the emulated network.
func (c *Cluster) assignECMPFlow(replicaHost, clientHost string) (uint64, func()) {
	var src, dst topology.NodeID
	var foundSrc, foundDst bool
	for _, h := range c.Topo.Hosts() {
		switch c.Topo.Node(h).Name {
		case replicaHost:
			src, foundSrc = h, true
		case clientHost:
			dst, foundDst = h, true
		}
	}
	if !foundSrc || !foundDst || src == dst {
		return 0, nil
	}
	id := c.nextID.Add(1)
	path, err := c.ecmp.SelectPath(src, dst, id)
	if err != nil {
		return 0, nil
	}
	if err := c.admit.RegisterFlow(id, path); err != nil {
		return 0, nil
	}
	return id, func() { c.admit.UnregisterFlow(id) }
}

// Close tears the whole deployment down.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	clients := make([]*client.Client, 0, len(c.clients)+len(c.extra))
	for _, cl := range c.clients {
		clients = append(clients, cl)
	}
	clients = append(clients, c.extra...)
	c.mu.Unlock()

	if c.fs != nil || len(c.flowShards) > 0 {
		close(c.pollStop)
		<-c.pollDone
	}
	if c.audit != nil {
		c.audit.MergeInto(c.reg, "testbed.drift")
	}
	for _, cl := range clients {
		cl.Close()
	}
	for _, ds := range c.servers {
		ds.Close()
	}
	if c.fsSrv != nil {
		c.fsSrv.Close()
	}
	c.shardMu.Lock()
	for k, srv := range c.shardSrvs {
		if !c.shardDead[k] {
			srv.Close()
		}
	}
	c.shardMu.Unlock()
	if c.dirSrv != nil {
		c.dirSrv.Close()
	}
	if c.shardPool != nil {
		c.shardPool.Close()
	}
	if c.nsSrv != nil {
		c.nsSrv.Close()
	}
	if c.nsStore != nil {
		c.nsStore.Close()
	}
	var err error
	if c.controller != nil {
		err = c.controller.Close()
	}
	for _, sw := range c.switches {
		sw.Close()
	}
	if c.ownWorkDir {
		os.RemoveAll(c.workDir)
	}
	return err
}
