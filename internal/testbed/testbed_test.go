package testbed

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/topology"
	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// tinyTopo keeps test clusters small: 8 hosts, fast links so pacing
// overhead stays negligible.
func tinyTopo() topology.Config {
	edge := topology.Mbps(512)
	return topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: edge, EdgeAggLinkBps: edge / 2, AggCoreLinkBps: edge / 8,
	}
}

func TestClusterEndToEnd(t *testing.T) {
	for _, mode := range []Mode{ModeMayflower, ModeHDFSMayflower, ModeHDFSECMP} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cluster, err := NewCluster(ClusterConfig{Mode: mode, Topo: tinyTopo(), Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()

			writer, err := cluster.Client(cluster.Topo.HostAt(0, 0, 0))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			if _, err := writer.Create(ctx, "e2e", nameserver.CreateOptions{ChunkSize: 1 << 20}); err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("mayflower!"), 20_000) // 200 KB
			if _, err := writer.Append(ctx, "e2e", payload); err != nil {
				t.Fatal(err)
			}

			reader, err := cluster.Client(cluster.Topo.HostAt(1, 1, 1))
			if err != nil {
				t.Fatal(err)
			}
			got, err := reader.ReadAll(ctx, "e2e")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("read returned wrong bytes")
			}
			// Mayflower modes must have drained their flow model.
			if cluster.fs != nil && cluster.fs.NumFlows() != 0 {
				t.Errorf("flowserver still tracks %d flows", cluster.fs.NumFlows())
			}
			if n := cluster.Net.NumFlows(); n != 0 {
				t.Errorf("emunet still tracks %d flows", n)
			}
		})
	}
}

func TestClusterPacingObservable(t *testing.T) {
	// A cross-pod read at 8 Mbps agg-core bottleneck: 512 KB should take
	// roughly half a second — proving reads really cross the emulated
	// network rather than raw loopback.
	cfg := tinyTopo()
	cfg.EdgeLinkBps = topology.Mbps(8)
	cfg.EdgeAggLinkBps = topology.Mbps(8)
	cfg.AggCoreLinkBps = topology.Mbps(8)
	cluster, err := NewCluster(ClusterConfig{Mode: ModeMayflower, Topo: cfg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	primaryHost := cluster.Topo.HostAt(0, 0, 0)
	writer, err := cluster.Client(primaryHost)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Create(ctx, "paced", nameserver.CreateOptions{
		ChunkSize:         1 << 20,
		PreferredReplicas: []string{cluster.ServerID(primaryHost)},
	}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 512<<10)
	if _, err := writer.Append(ctx, "paced", payload); err != nil {
		t.Fatal(err)
	}

	reader, err := cluster.Client(cluster.Topo.HostAt(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := reader.ReadAll(ctx, "paced")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(got) != len(payload) {
		t.Fatalf("read %d bytes", len(got))
	}
	// 512 KB at 8 Mbps ≈ 0.5 s (single replica, single path).
	if elapsed < 300*time.Millisecond {
		t.Errorf("read took %v; pacing seems bypassed", elapsed)
	}
}

func TestRunExperimentSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype experiment is wall-clock bound")
	}
	for _, mode := range []Mode{ModeMayflower, ModeHDFSECMP} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := ExperimentConfig{
				Mode:        mode,
				Topo:        tinyTopo(),
				Lambda:      1.5,
				NumJobs:     30,
				WarmupJobs:  5,
				NumFiles:    10,
				FileBytes:   256 << 10,
				Replication: 3,
				Locality:    workload.LocalityRackHeavy,
				Seed:        4,
				Verify:      true,
			}
			res, err := RunExperiment(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d read errors", res.Errors)
			}
			if res.Summary.N != cfg.NumJobs-cfg.WarmupJobs {
				t.Fatalf("measured %d jobs, want %d", res.Summary.N, cfg.NumJobs-cfg.WarmupJobs)
			}
			if res.Summary.Mean <= 0 {
				t.Fatal("non-positive mean completion time")
			}
		})
	}
}

func TestRunExperimentValidation(t *testing.T) {
	bad := DefaultExperiment(ModeMayflower)
	bad.NumJobs = 0
	if _, err := RunExperiment(bad); err == nil {
		t.Error("zero jobs accepted")
	}
	bad = DefaultExperiment(ModeMayflower)
	bad.FileBytes = 0
	if _, err := RunExperiment(bad); err == nil {
		t.Error("zero file size accepted")
	}
}

func TestModeString(t *testing.T) {
	tests := map[Mode]string{
		ModeMayflower:     "Mayflower",
		ModeHDFSMayflower: "HDFS-Mayflower",
		ModeHDFSECMP:      "HDFS-ECMP",
		Mode(9):           "Mode(9)",
	}
	for m, want := range tests {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestScaledTestbedOversubscription(t *testing.T) {
	cfg := ScaledTestbed()
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumHosts() != 16 {
		t.Errorf("hosts = %d, want 16", topo.NumHosts())
	}
	// Core-to-rack oversubscription: pod host bw / pod core bw = 8.
	podHost := float64(cfg.RacksPerPod*cfg.HostsPerRack) * cfg.EdgeLinkBps
	podCore := float64(cfg.AggsPerPod*cfg.Cores) * cfg.AggCoreLinkBps
	if ratio := podHost / podCore; ratio < 7.9 || ratio > 8.1 {
		t.Errorf("core-to-rack oversubscription = %g, want 8", ratio)
	}
}
