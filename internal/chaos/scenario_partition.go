package chaos

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/client"
	"github.com/mayflower-dfs/mayflower/internal/rpc"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// partition is a client-side network partition: dials to blocked
// addresses fail while active, and control connections already open to
// them are severed on activation (a real partition kills established
// flows too).
type partition struct {
	mu      sync.Mutex
	active  bool
	blocked map[string]bool
	ctl     map[string][]*wire.Client // addr → conns opened through us
}

func newPartition(addrs []string) *partition {
	p := &partition{blocked: make(map[string]bool), ctl: make(map[string][]*wire.Client)}
	for _, a := range addrs {
		p.blocked[a] = true
	}
	return p
}

var errPartitioned = fmt.Errorf("chaos: host partitioned")

func (p *partition) cut(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active && p.blocked[addr]
}

// dialData is a client DialData hook honoring the partition.
func (p *partition) dialData(ctx context.Context, addr string) (net.Conn, error) {
	if p.cut(addr) {
		return nil, errPartitioned
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// dialControl is a client DialControl hook honoring the partition: it
// feeds the client's session pool, so severed sessions re-enter here on
// the pool's reconnect and fail while the partition is active.
func (p *partition) dialControl(ctx context.Context, addr string) (*wire.Client, error) {
	if p.cut(addr) {
		return nil, errPartitioned
	}
	c, err := rpc.DialSession(ctx, addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.blocked[addr] {
		p.ctl[addr] = append(p.ctl[addr], c)
	}
	p.mu.Unlock()
	return c, nil
}

// activate starts the partition, severing tracked connections into it.
func (p *partition) activate() {
	p.mu.Lock()
	p.active = true
	var sever []*wire.Client
	for addr, cs := range p.ctl {
		sever = append(sever, cs...)
		delete(p.ctl, addr)
	}
	p.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// heal ends the partition.
func (p *partition) heal() {
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
}

// PartitionRack cuts a client off from every dataserver in a seed-chosen
// rack holding a replica of f0 and asserts reads of every file still
// succeed by failing over to replicas outside the partition — including
// when the Flowserver (which cannot see the client's partition) assigns
// the unreachable replica. After healing, reads succeed again.
func PartitionRack(ctx context.Context, t *T) error {
	d, err := newDeployment(t, testbed.ModeMayflower)
	if err != nil {
		return err
	}
	defer d.Close()

	// Build the partition before the client so its dialers can be wired
	// in; the blocked set is filled once the victim rack is chosen.
	part := newPartition(nil)
	// Metadata bootstrap client (not partitioned) pins placements.
	boot, err := d.cluster.Client(d.hosts[0])
	if err != nil {
		return err
	}
	sums, repSets, err := d.createFiles(ctx, t, boot, 3, 128<<10)
	if err != nil {
		return err
	}

	// Victim rack: the rack of a seed-chosen replica of f0. Racks hold 2
	// of 8 hosts, so every 3-replica file keeps at least one replica
	// outside the partition.
	victimID := repSets[0][t.Intn(len(repSets[0]))]
	victimRack := d.rackOf[victimID]
	for id, rack := range d.rackOf {
		if rack != victimRack {
			continue
		}
		ctl, data, err := d.cluster.DataserverAddrs(d.hostOf[id])
		if err != nil {
			return err
		}
		part.mu.Lock()
		part.blocked[ctl] = true
		part.blocked[data] = true
		part.mu.Unlock()
	}
	// The observing client lives outside the victim rack (first such host
	// in topology order — deterministic).
	clientNode := d.hosts[0]
	for _, h := range d.hosts {
		node := d.cluster.Topo.Node(h)
		if node.Pod*chaosTopo().RacksPerPod+node.Rack != victimRack {
			clientNode = h
			break
		}
	}
	cl, err := d.cluster.NewClient(clientNode, func(o *client.Options) {
		o.DialData = part.dialData
		o.DialControl = part.dialControl
		o.RetryBackoff = 10 * time.Millisecond
	})
	if err != nil {
		return err
	}

	sched := &Scheduler{}
	sched.At(0, "read all files (baseline)", func() error {
		return readAll(ctx, t, cl, sums, "baseline")
	})
	sched.At(10*time.Millisecond, fmt.Sprintf("partition rack %d", victimRack), func() error {
		part.activate()
		return nil
	})
	sched.At(20*time.Millisecond, "read all files (partitioned)", func() error {
		return readAll(ctx, t, cl, sums, "partitioned")
	})
	sched.At(30*time.Millisecond, "heal partition", func() error {
		part.heal()
		return nil
	})
	sched.At(40*time.Millisecond, "read all files (healed)", func() error {
		return readAll(ctx, t, cl, sums, "healed")
	})
	return sched.Run(t)
}
