package chaos

import (
	"context"
	"fmt"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/repair"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
)

// KillDataserverMidRead kills a seed-chosen replica of f0 while
// concurrent reads of every file are in flight, and asserts:
//
//   - every read completes successfully via client failover (no hangs,
//     no partial data — checksums verified);
//   - a repair pass declares the victim dead exactly once and
//     re-replicates every file that lost a replica (re-replication kick
//     on confirmed death);
//   - reads after repair still succeed.
func KillDataserverMidRead(ctx context.Context, t *T) error {
	d, err := newDeployment(t, testbed.ModeMayflower)
	if err != nil {
		return err
	}
	defer d.Close()

	cl, err := d.cluster.Client(d.hosts[0])
	if err != nil {
		return err
	}
	sums, repSets, err := d.createFiles(ctx, t, cl, 4, 192<<10)
	if err != nil {
		return err
	}

	victim := repSets[0][t.Intn(len(repSets[0]))]
	host := d.hostOf[victim]
	// Files that lose a replica when the victim dies — the repair pass
	// must replace exactly these.
	expectRepairs := 0
	for _, reps := range repSets {
		for _, id := range reps {
			if id == victim {
				expectRepairs++
			}
		}
	}

	var join func() error
	sched := &Scheduler{}
	sched.At(0, "start concurrent reads of 4 files", func() error {
		join = startReads(ctx, t, cl, sums, "during kill")
		return nil
	})
	sched.At(2*time.Millisecond, fmt.Sprintf("kill dataserver %s", victim), func() error {
		_, err := d.cluster.KillDataserver(host)
		return err
	})
	sched.At(4*time.Millisecond, "join reads", func() error {
		return join()
	})
	// Past the heartbeat-silence threshold: the nameserver's liveness view
	// has confirmed the death and a repair pass can act on it.
	sched.At(600*time.Millisecond, "repair pass", func() error {
		mon := repair.NewMonitor(repair.Config{
			Service:   d.cluster.NameserverService(),
			DeadAfter: 250 * time.Millisecond,
		})
		res, err := mon.Pass(ctx)
		if err != nil {
			return err
		}
		if len(res.Dead) != 1 || res.Dead[0] != victim {
			return fmt.Errorf("declared dead %v, want [%s]", res.Dead, victim)
		}
		if len(res.Lost) > 0 || len(res.Faults) > 0 {
			return fmt.Errorf("repair lost=%v faults=%v", res.Lost, res.Faults)
		}
		if res.Repaired != expectRepairs {
			return fmt.Errorf("repaired %d replicas, want %d", res.Repaired, expectRepairs)
		}
		t.Eventf("declared dead: %v, re-replicated %d replicas", res.Dead, res.Repaired)

		// A second pass must not re-declare or re-repair.
		res2, err := mon.Pass(ctx)
		if err != nil {
			return err
		}
		if len(res2.Dead) != 0 || res2.Repaired != 0 {
			return fmt.Errorf("second pass dead=%v repaired=%d, want none", res2.Dead, res2.Repaired)
		}
		t.Eventf("second pass: no new declarations, no re-repair")
		return nil
	})
	sched.At(610*time.Millisecond, "read all files after repair", func() error {
		return readAll(ctx, t, cl, sums, "post-repair")
	})
	return sched.Run(t)
}
