package chaos

import (
	"net"
	"sync"
	"time"
)

// ProxyMode selects how the proxy treats traffic.
type ProxyMode int

// Proxy modes.
const (
	// ProxyPass forwards traffic unchanged.
	ProxyPass ProxyMode = iota
	// ProxyDrop refuses new connections and severs existing ones — the
	// peer looks crashed (fast errors).
	ProxyDrop
	// ProxyBlackhole accepts connections but forwards nothing — the peer
	// looks wedged (stalls, exercising client timeouts).
	ProxyBlackhole
)

// Proxy is a TCP proxy in front of a real component, used to inject
// transport faults (drop, stall) without touching the component itself.
type Proxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	mode   ProxyMode
	conns  map[net.Conn]struct{}
	closed bool
}

// NewProxy starts a proxy on a fresh loopback port forwarding to target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetMode switches the fault mode. Entering ProxyDrop severs every
// existing connection.
func (p *Proxy) SetMode(mode ProxyMode) {
	p.mu.Lock()
	p.mode = mode
	var conns []net.Conn
	if mode == ProxyDrop {
		for c := range p.conns {
			conns = append(conns, c)
		}
		p.conns = make(map[net.Conn]struct{})
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *Proxy) getMode() ProxyMode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.getMode() == ProxyDrop {
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		go p.pipe(conn, up)
		go p.pipe(up, conn)
	}
}

// pipe copies src to dst, pausing (without closing) while blackholed.
func (p *Proxy) pipe(dst, src net.Conn) {
	defer func() {
		p.mu.Lock()
		delete(p.conns, dst)
		delete(p.conns, src)
		p.mu.Unlock()
		dst.Close()
		src.Close()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			for p.getMode() == ProxyBlackhole {
				// Stall: hold the bytes back until the mode changes or
				// the proxy closes.
				p.mu.Lock()
				closed := p.closed
				p.mu.Unlock()
				if closed {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// Close stops the proxy and severs every connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}
