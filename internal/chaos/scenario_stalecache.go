package chaos

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/client"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/repair"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
)

// StaleCacheAfterRepair drives the metadata lease cache through the two
// mutations a second client cannot see coming: a repair-promoted primary
// and a delete, both performed while that client holds live leases. It
// asserts the lease contract end to end:
//
//   - a reader whose cached replica set was obsoleted by repair picks up
//     the promoted primary within one lease, via the batched Validate
//     renewal path (observed on the client's cache counters), not by
//     error-driven invalidation;
//   - a file deleted by another client stops resolving at the stale
//     reader within one lease — the Validate renewal reports it gone and
//     the reader gets ErrNotFound, never the pre-delete bytes.
func StaleCacheAfterRepair(ctx context.Context, t *T) error {
	d, err := newDeployment(t, testbed.ModeMayflower)
	if err != nil {
		return err
	}
	defer d.Close()

	writer, err := d.cluster.NewClient(d.hosts[0], nil)
	if err != nil {
		return err
	}
	// The stale reader: a short lease so the scripted 600 ms repair gap
	// comfortably spans several lease lengths, and a private registry so
	// the scenario can observe which cache path served each read.
	reg := obs.NewRegistry()
	reader, err := d.cluster.NewClient(d.hosts[1], func(o *client.Options) {
		o.CacheTTL = 150 * time.Millisecond
		o.RetryBackoff = 25 * time.Millisecond
		o.Metrics = reg
	})
	if err != nil {
		return err
	}
	staleServed := reg.Counter("client.cache_stale_served")
	lookups := reg.Counter("client.rpc.method.ns.Lookup.calls")

	reps := d.pickReplicas(t, 3)
	victim := reps[0] // both files' primary; repair must promote past it
	host := d.hostOf[victim]
	sums := make([]uint32, 2)
	for i, name := range []string{"s0", "s1"} {
		if _, err := writer.Create(ctx, name, nameserver.CreateOptions{
			Replication:       3,
			PreferredReplicas: reps,
		}); err != nil {
			return fmt.Errorf("create %s: %w", name, err)
		}
		payload := t.Payload(name, 64<<10)
		if _, err := writer.Append(ctx, name, payload); err != nil {
			return fmt.Errorf("append %s: %w", name, err)
		}
		sums[i] = Checksum(payload)
		t.Eventf("created %s replicas=%v sum=%08x", name, reps, sums[i])
	}
	// Prime the reader's leases before any fault: both records now cache
	// the doomed primary.
	for i, name := range []string{"s0", "s1"} {
		data, err := reader.ReadAll(ctx, name)
		if err != nil {
			return fmt.Errorf("prime read %s: %w", name, err)
		}
		if got := Checksum(data); got != sums[i] {
			return fmt.Errorf("prime read %s: checksum %08x, want %08x", name, got, sums[i])
		}
	}
	lookupsPrimed := lookups.Value()
	t.Eventf("reader primed leases for s0 s1")

	sched := &Scheduler{}
	sched.At(2*time.Millisecond, fmt.Sprintf("kill primary %s", victim), func() error {
		_, err := d.cluster.KillDataserver(host)
		return err
	})
	// Past the heartbeat-silence threshold: a repair pass declares the
	// victim dead, promotes the first survivor to primary of both files,
	// and re-replicates — bumping each record's version and the epoch.
	sched.At(600*time.Millisecond, "repair pass promotes a survivor", func() error {
		mon := repair.NewMonitor(repair.Config{
			Service:   d.cluster.NameserverService(),
			DeadAfter: 250 * time.Millisecond,
		})
		res, err := mon.Pass(ctx)
		if err != nil {
			return err
		}
		if len(res.Dead) != 1 || res.Dead[0] != victim {
			return fmt.Errorf("declared dead %v, want [%s]", res.Dead, victim)
		}
		if len(res.Lost) > 0 || len(res.Faults) > 0 {
			return fmt.Errorf("repair lost=%v faults=%v", res.Lost, res.Faults)
		}
		if res.Repaired != 2 {
			return fmt.Errorf("repaired %d replicas, want 2", res.Repaired)
		}
		t.Eventf("declared dead: %v, re-replicated %d replicas", res.Dead, res.Repaired)
		return nil
	})
	sched.At(610*time.Millisecond, "writer deletes s1", func() error {
		if err := writer.Delete(ctx, "s1"); err != nil {
			return fmt.Errorf("delete s1: %w", err)
		}
		t.Eventf("deleted s1")
		return nil
	})
	// 800 ms is more than one 150 ms lease past both mutations: the
	// reader's next access must revalidate, not serve the stale records.
	sched.At(800*time.Millisecond, "stale reader rereads s0 via lease renewal", func() error {
		data, err := reader.ReadAll(ctx, "s0")
		if err != nil {
			return fmt.Errorf("read s0 post-repair: %w", err)
		}
		if got := Checksum(data); got != sums[0] {
			return fmt.Errorf("read s0 post-repair: checksum %08x, want %08x", got, sums[0])
		}
		info, err := reader.Stat(ctx, "s0")
		if err != nil {
			return fmt.Errorf("stat s0 post-repair: %w", err)
		}
		if got := info.Primary().ServerID; got == victim || got != reps[1] {
			return fmt.Errorf("post-repair primary %s, want promoted survivor %s", got, reps[1])
		}
		if staleServed.Value() == 0 {
			return errors.New("repair-obsoleted record was not caught by lease revalidation")
		}
		if extra := lookups.Value() - lookupsPrimed; extra != 0 {
			return fmt.Errorf("reread cost %d full Lookups, want 0 (batched Validate only)", extra)
		}
		t.Eventf("reread s0 ok via promoted primary %s, renewed by validate (no full lookup)", reps[1])
		return nil
	})
	sched.At(810*time.Millisecond, "stale reader sees s1 deleted", func() error {
		_, err := reader.ReadAll(ctx, "s1")
		if err == nil {
			return errors.New("read of deleted s1 served stale bytes past one lease")
		}
		if !errors.Is(err, nameserver.ErrNotFound) {
			return fmt.Errorf("read deleted s1: got %v, want ErrNotFound", err)
		}
		t.Eventf("read s1 correctly gone within one lease")
		return nil
	})
	return sched.Run(t)
}
