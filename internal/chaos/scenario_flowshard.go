package chaos

import (
	"context"
	"fmt"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/client"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
)

// KillFlowserverShardMidSelect runs the sharded control plane's fault
// script: the flow controller is partitioned into two shards behind the
// directory, and the shard owning the reading client's pod is killed
// while concurrent reads are in flight. The invariants:
//
//   - every in-flight read completes (degraded locality-order selection
//     or a retried Select against the promoted shard — never a hang);
//   - the directory promotes the dead shard's pods to the survivor
//     under a bumped epoch, exactly once;
//   - once the client's route TTL lapses it re-resolves through the
//     directory and scheduled reads recover on the promoted shard.
func KillFlowserverShardMidSelect(ctx context.Context, t *T) error {
	d, err := newDeploymentWith(t, testbed.ModeMayflower, func(c *testbed.ClusterConfig) {
		c.FlowShards = 2
	})
	if err != nil {
		return err
	}
	defer d.Close()

	// The client lives in pod 1 — shard 1's territory under the initial
	// p mod 2 layout — with a short route TTL so the scenario observes
	// recovery onto the promoted shard, not just degradation.
	cl, err := d.cluster.NewClient(d.cluster.Topo.HostAt(1, 0, 0), func(o *client.Options) {
		o.FlowserverTimeout = 250 * time.Millisecond
		o.RetryBackoff = 10 * time.Millisecond
		o.FlowRouteTTL = 20 * time.Millisecond
	})
	if err != nil {
		return err
	}
	sums, _, err := d.createFiles(ctx, t, cl, 3, 128<<10)
	if err != nil {
		return err
	}

	var join func() error
	sched := &Scheduler{}
	sched.At(0, "read all files (shard-routed)", func() error {
		return readAll(ctx, t, cl, sums, "sharded")
	})
	sched.At(5*time.Millisecond, "start concurrent reads of 3 files", func() error {
		join = startReads(ctx, t, cl, sums, "during shard kill")
		return nil
	})
	sched.At(7*time.Millisecond, "kill flow shard 1 (owns reader pod)", func() error {
		if err := d.cluster.KillFlowShard(1); err != nil {
			return err
		}
		shard, _, epoch, ok := d.cluster.FlowDirectory().Lookup(1)
		if !ok || shard != 0 {
			return fmt.Errorf("pod 1 owner after kill = %d (ok=%v), want shard 0", shard, ok)
		}
		if epoch != 2 {
			return fmt.Errorf("directory epoch after kill = %d, want 2", epoch)
		}
		t.Eventf("failover: pod 1 -> shard %d epoch=%d", shard, epoch)
		return nil
	})
	sched.At(9*time.Millisecond, "join reads", func() error {
		return join()
	})
	// Well past the 20 ms route TTL: the client has re-resolved through
	// the directory and selections land on the promoted shard.
	sched.At(100*time.Millisecond, "read all files (re-routed)", func() error {
		return readAll(ctx, t, cl, sums, "re-routed")
	})
	return sched.Run(t)
}
