package chaos

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/emunet"
	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/netsim"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

func faultTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: 8e6, EdgeAggLinkBps: 8e6, AggCoreLinkBps: 4e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestLinkFaultsOnBothBackends drives the same cut/restore scenario
// through the simulator and the emulator via the shared fabric contract:
// a flow that would finish in 0.1s has its path cut before it can
// complete, starves through the outage, and finishes only after the
// link is restored. The scenario code is backend-agnostic — that is the
// point of the fabric seam.
func TestLinkFaultsOnBothBackends(t *testing.T) {
	backends := map[string]func(*topology.Topology) fabric.Backend{
		"netsim": func(topo *topology.Topology) fabric.Backend {
			return netsim.New(topo)
		},
		"emunet": func(topo *topology.Topology) fabric.Backend {
			return emunet.NewFabric(emunet.NewWithClock(topo, fabric.NewScaledClock(8)))
		},
	}
	for name, mk := range backends {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			topo := faultTopo(t)
			fab := mk(topo)
			paths := topo.ShortestPaths(topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))
			if len(paths) == 0 {
				t.Fatal("no path")
			}
			path := paths[0]

			faults := NewLinkFaults(fab)
			var end float64
			completed := false
			fab.Schedule(0, func() {
				fab.StartFlow(fabric.FlowConfig{
					Links: path,
					Bits:  0.8e6, // 0.1s alone at 8 Mbps
					OnComplete: func(e float64) {
						end = e
						completed = true
					},
				})
			})
			fab.Schedule(0.05, func() {
				faults.CutLink(path[0])
				if faults.NumCut() != 1 {
					t.Errorf("NumCut = %d, want 1", faults.NumCut())
				}
			})
			fab.Schedule(0.5, func() { faults.RestoreAll() })
			if err := fab.Run(); err != nil {
				t.Fatal(err)
			}
			if !completed {
				t.Fatal("flow never completed")
			}
			// The flow had 0.05s of full rate before the cut (half its
			// bits), starved until 0.5, then needed ≈0.05s more.
			if end < 0.5 {
				t.Errorf("flow completed at %.3fs, before the 0.5s restore", end)
			}
			if end > 1.0 {
				t.Errorf("flow completed at %.3fs, too long after restore", end)
			}
			if faults.NumCut() != 0 {
				t.Errorf("NumCut after RestoreAll = %d, want 0", faults.NumCut())
			}
		})
	}
}

// TestLinkFaultsNodeCut verifies CutNode isolates a host on the
// emulated backend and RestoreNode heals it.
func TestLinkFaultsNodeCut(t *testing.T) {
	topo := faultTopo(t)
	net := emunet.NewWithClock(topo, fabric.NewScaledClock(8))
	faults := NewLinkFaults(net)

	host := topo.HostAt(0, 0, 0)
	paths := topo.ShortestPaths(host, topo.HostAt(0, 0, 1))
	if len(paths) == 0 {
		t.Fatal("no path")
	}
	if err := net.RegisterFlow(1, paths[0]); err != nil {
		t.Fatal(err)
	}
	faults.CutNode(host)
	if r, _ := net.FlowRate(1); r != 0 {
		t.Fatalf("rate with host cut = %g, want 0", r)
	}
	faults.RestoreNode(host)
	if r, _ := net.FlowRate(1); r <= 0 {
		t.Fatalf("rate after restore = %g, want > 0", r)
	}
}
