package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/kvstore"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/paxos"
	"github.com/mayflower-dfs/mayflower/internal/wire"
)

// nsReplica is one member of a Paxos-replicated nameserver group. Its RPC
// endpoint can crash (connections severed, port closed) and recover on
// the same address; the Paxos log brings a recovered member back up to
// date. This models an endpoint crash / long network outage — the
// prototype's Paxos log is in-memory, so a full process crash with state
// loss is out of scope.
type nsReplica struct {
	id    int64
	addr  string
	store *kvstore.Store
	svc   *nameserver.Service
	rs    *nameserver.ReplicatedService
	node  *paxos.Node
	srv   *wire.Server
}

func (r *nsReplica) serve(ln net.Listener) error {
	srv := wire.NewServer()
	if err := paxos.RegisterRPC(srv, r.node); err != nil {
		return err
	}
	if err := nameserver.RegisterRPC(srv, r.rs); err != nil {
		return err
	}
	r.srv = srv
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return nil
}

// crash severs the replica's RPC endpoint (existing connections killed,
// new ones refused).
func (r *nsReplica) crash() error { return r.srv.Close() }

// recover reopens the RPC endpoint on the original address; peers' lazy
// redial picks it up on their next message.
func (r *nsReplica) recover() error {
	ln, err := net.Listen("tcp", r.addr)
	if err != nil {
		return err
	}
	return r.serve(ln)
}

func (r *nsReplica) close() {
	if r.srv != nil {
		r.srv.Close()
	}
	if r.store != nil {
		r.store.Close()
	}
}

// NameserverReplicaCrash drives a 3-replica Paxos nameserver group
// through crash, loss of quorum, and recovery:
//
//   - with one replica crashed, mutations still commit (majority);
//   - with two crashed, mutations fail fast with ErrReplicationTimeout —
//     graceful error propagation, not a hang;
//   - after recovery, a crashed replica catches up on the mutations it
//     missed via the Paxos log, and the failed no-quorum mutation is
//     nowhere to be found.
func NameserverReplicaCrash(ctx context.Context, t *T) error {
	const n = 3
	replicas := make([]*nsReplica, n)
	defer func() {
		for _, r := range replicas {
			if r != nil {
				r.close()
			}
		}
	}()

	// Listeners first, so every node knows every address.
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		store, err := kvstore.Open(fmt.Sprintf("%s/ns%d", t.WorkDir, i), kvstore.Options{})
		if err != nil {
			return err
		}
		svc, err := nameserver.NewService(store, rand.New(rand.NewSource(t.Seed+int64(i))))
		if err != nil {
			store.Close()
			return err
		}
		rs := nameserver.NewReplicatedService(svc)
		peers := make(map[int64]paxos.Transport)
		for j := 0; j < n; j++ {
			if j != i {
				peers[int64(j)] = paxos.NewRPCTransport(addrs[j])
			}
		}
		node, err := paxos.NewNode(paxos.Config{ID: int64(i), Peers: peers, Apply: rs.Apply})
		if err != nil {
			store.Close()
			return err
		}
		rs.SetNode(node)
		r := &nsReplica{id: int64(i), addr: addrs[i], store: store, svc: svc, rs: rs, node: node}
		if err := r.serve(lns[i]); err != nil {
			store.Close()
			return err
		}
		replicas[i] = r
	}
	head := replicas[0].rs

	// Fake dataservers give placement something to draw on; no data moves
	// in this metadata-plane scenario.
	serverIDs := []string{"ds-a", "ds-b", "ds-c", "ds-d"}
	for i, id := range serverIDs {
		if err := head.RegisterServer(nameserver.ServerInfo{
			ID:          id,
			ControlAddr: fmt.Sprintf("127.0.0.1:%d", 10000+i),
			DataAddr:    fmt.Sprintf("127.0.0.1:%d", 11000+i),
			Host:        fmt.Sprintf("host-p0-r%d-h0", i),
			Rack:        i,
		}); err != nil {
			return fmt.Errorf("register %s: %w", id, err)
		}
	}
	t.Eventf("registered %d dataservers", len(serverIDs))

	create := func(name string) error {
		reps := make([]string, 0, 3)
		pool := append([]string(nil), serverIDs...)
		for len(reps) < 3 {
			i := t.Intn(len(pool))
			reps = append(reps, pool[i])
			pool = append(pool[:i], pool[i+1:]...)
		}
		fi, err := head.Create(name, nameserver.CreateOptions{Replication: 3, PreferredReplicas: reps})
		if err != nil {
			return err
		}
		ids := make([]string, len(fi.Replicas))
		for i, rep := range fi.Replicas {
			ids[i] = rep.ServerID
		}
		t.Eventf("ns create %s replicas=%v", name, ids)
		return nil
	}

	sched := &Scheduler{}
	sched.At(0, "create f0..f2 with full quorum", func() error {
		for i := 0; i < 3; i++ {
			if err := create(fmt.Sprintf("f%d", i)); err != nil {
				return err
			}
		}
		return nil
	})
	sched.At(10*time.Millisecond, "crash replica 2", func() error {
		return replicas[2].crash()
	})
	sched.At(20*time.Millisecond, "create f3 with 2/3 quorum", func() error {
		return create("f3")
	})
	sched.At(30*time.Millisecond, "crash replica 1 (quorum lost)", func() error {
		head.ProposeTimeout = 400 * time.Millisecond
		return replicas[1].crash()
	})
	sched.At(40*time.Millisecond, "create f4 without quorum fails fast", func() error {
		err := create("f4")
		if err == nil {
			return errors.New("create f4 succeeded without quorum")
		}
		if !errors.Is(err, nameserver.ErrReplicationTimeout) {
			return fmt.Errorf("create f4: %v, want ErrReplicationTimeout", err)
		}
		t.Eventf("ns create f4 rejected: replication timeout (no quorum)")
		return nil
	})
	sched.At(500*time.Millisecond, "recover replicas 1 and 2", func() error {
		head.ProposeTimeout = 10 * time.Second
		if err := replicas[1].recover(); err != nil {
			return err
		}
		return replicas[2].recover()
	})
	sched.At(510*time.Millisecond, "create f5 after recovery", func() error {
		return create("f5")
	})
	sched.At(520*time.Millisecond, "replica 2 catches up", func() error {
		cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if err := replicas[2].node.CatchUp(cctx); err != nil {
			return err
		}
		// Catch-up learns the chosen commands; applying is asynchronous
		// only across gaps, so poll briefly for convergence.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if replicas[2].svc.NumFiles() == 5 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica 2 has %d files, want 5", replicas[2].svc.NumFiles())
			}
			time.Sleep(5 * time.Millisecond)
			cctx, cancel := context.WithTimeout(ctx, time.Second)
			_ = replicas[2].node.CatchUp(cctx)
			cancel()
		}
		if _, err := replicas[2].svc.Lookup("f5"); err != nil {
			return fmt.Errorf("replica 2 lookup f5: %w", err)
		}
		if _, err := replicas[2].svc.Lookup("f4"); err == nil {
			return errors.New("replica 2 has f4, which never committed")
		}
		t.Eventf("replica 2 caught up: 5 files, f4 absent")
		return nil
	})
	return sched.Run(t)
}
