package chaos

import (
	"context"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/client"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
)

// flowserverFault runs the shared Flowserver-fault script: reads succeed
// through the Flowserver, the given fault is injected into its RPC path,
// and reads must keep succeeding — degraded to locality-order replica
// selection — without panics or hangs.
func flowserverFault(ctx context.Context, t *T, faultName string, mode ProxyMode) error {
	d, err := newDeployment(t, testbed.ModeMayflower)
	if err != nil {
		return err
	}
	defer d.Close()

	// The client reaches the Flowserver only through the fault proxy; a
	// short Select deadline keeps the stall case snappy.
	proxy, err := NewProxy(d.cluster.FlowserverAddr())
	if err != nil {
		return err
	}
	defer proxy.Close()
	cl, err := d.cluster.NewClient(d.hosts[0], func(o *client.Options) {
		o.FlowserverAddr = proxy.Addr()
		o.FlowserverTimeout = 250 * time.Millisecond
		o.RetryBackoff = 10 * time.Millisecond
	})
	if err != nil {
		return err
	}
	sums, _, err := d.createFiles(ctx, t, cl, 3, 128<<10)
	if err != nil {
		return err
	}

	sched := &Scheduler{}
	sched.At(0, "read all files (flowserver-scheduled)", func() error {
		return readAll(ctx, t, cl, sums, "scheduled")
	})
	sched.At(10*time.Millisecond, faultName, func() error {
		proxy.SetMode(mode)
		return nil
	})
	sched.At(20*time.Millisecond, "read all files (degraded)", func() error {
		return readAll(ctx, t, cl, sums, "degraded")
	})
	return sched.Run(t)
}

// FlowserverUnreachable severs the client's Flowserver connectivity
// outright (connections refused): Select fails fast and reads degrade to
// locality-order replica selection.
func FlowserverUnreachable(ctx context.Context, t *T) error {
	return flowserverFault(ctx, t, "drop flowserver connectivity", ProxyDrop)
}

// FlowserverStall wedges the Flowserver's RPC path (connections accepted,
// bytes withheld): Select hangs until the client's FlowserverTimeout
// fires, then reads degrade to locality-order replica selection.
func FlowserverStall(ctx context.Context, t *T) error {
	return flowserverFault(ctx, t, "stall flowserver connectivity", ProxyBlackhole)
}
