package chaos

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/client"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// chaosTopo is the scenarios' testbed: 8 hosts in 2 pods × 2 racks × 2
// hosts, small enough to boot in well under a second but with four
// distinct rack fault-domains to place across and partition.
func chaosTopo() topology.Config {
	edge := topology.Mbps(512)
	return topology.Config{
		Pods: 2, RacksPerPod: 2, HostsPerRack: 2, AggsPerPod: 2, Cores: 2,
		EdgeLinkBps: edge, EdgeAggLinkBps: edge / 2, AggCoreLinkBps: edge / 8,
	}
}

// deployment wraps a testbed cluster with the index structures scenarios
// need for deterministic placement and victim selection.
type deployment struct {
	cluster   *testbed.Cluster
	hosts     []topology.NodeID
	serverIDs []string          // index-aligned with hosts, lexically stable
	hostOf    map[string]string // server id → host name
	rackOf    map[string]int    // server id → global rack index
}

// newDeployment boots a cluster for a scenario. HeartbeatInterval is
// shrunk so death detection fits scenario time.
func newDeployment(t *T, mode testbed.Mode) (*deployment, error) {
	return newDeploymentWith(t, mode, nil)
}

// newDeploymentWith boots a cluster with scenario-specific tweaks to the
// stock config (sharded flow plane, say) applied by mutate.
func newDeploymentWith(t *T, mode testbed.Mode, mutate func(*testbed.ClusterConfig)) (*deployment, error) {
	cfg := testbed.ClusterConfig{
		Mode:              mode,
		Topo:              chaosTopo(),
		Seed:              t.Seed,
		WorkDir:           t.WorkDir,
		HeartbeatInterval: 50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cluster, err := testbed.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	d := &deployment{
		cluster: cluster,
		hostOf:  make(map[string]string),
		rackOf:  make(map[string]int),
	}
	for _, h := range cluster.Topo.Hosts() {
		node := cluster.Topo.Node(h)
		id := cluster.ServerID(h)
		d.hosts = append(d.hosts, h)
		d.serverIDs = append(d.serverIDs, id)
		d.hostOf[id] = node.Name
		d.rackOf[id] = node.Pod*chaosTopo().RacksPerPod + node.Rack
	}
	// Host iteration order is already deterministic (topology order), but
	// pin the id list lexically so victim draws never depend on it.
	sort.Strings(d.serverIDs)
	return d, nil
}

func (d *deployment) Close() { d.cluster.Close() }

// pickReplicas draws a replica set of n distinct server ids from the
// seeded rng — deterministic placement, recorded in the trace.
func (d *deployment) pickReplicas(t *T, n int) []string {
	pool := append([]string(nil), d.serverIDs...)
	reps := make([]string, 0, n)
	for len(reps) < n {
		i := t.Intn(len(pool))
		reps = append(reps, pool[i])
		pool = append(pool[:i], pool[i+1:]...)
	}
	return reps
}

// createFiles creates count files with pinned (seed-chosen) replica sets
// and deterministic payloads, recording each in the trace. Returns the
// payload checksums and replica sets, indexed by file.
func (d *deployment) createFiles(ctx context.Context, t *T, cl *client.Client, count, size int) ([]uint32, [][]string, error) {
	sums := make([]uint32, count)
	repSets := make([][]string, count)
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("f%d", i)
		reps := d.pickReplicas(t, 3)
		if _, err := cl.Create(ctx, name, nameserver.CreateOptions{
			Replication:       3,
			PreferredReplicas: reps,
		}); err != nil {
			return nil, nil, fmt.Errorf("create %s: %w", name, err)
		}
		payload := t.Payload(name, size)
		if _, err := cl.Append(ctx, name, payload); err != nil {
			return nil, nil, fmt.Errorf("append %s: %w", name, err)
		}
		sums[i] = Checksum(payload)
		repSets[i] = reps
		t.Eventf("created %s size=%d replicas=%v sum=%08x", name, size, reps, sums[i])
	}
	return sums, repSets, nil
}

// startReads launches one concurrent ReadAll per file and returns a join
// function that waits for them, verifies payload integrity, and records
// the outcomes in file order — never completion order, so the trace stays
// deterministic however the reads interleave with injected faults.
func startReads(ctx context.Context, t *T, cl *client.Client, sums []uint32, phase string) func() error {
	type result struct {
		n   int
		sum uint32
		err error
	}
	results := make([]result, len(sums))
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := range sums {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				data, err := cl.ReadAll(ctx, fmt.Sprintf("f%d", i))
				results[i] = result{n: len(data), sum: Checksum(data), err: err}
			}()
		}
		wg.Wait()
	}()
	return func() error {
		<-done
		for i, r := range results {
			if r.err != nil {
				return fmt.Errorf("read f%d (%s): %w", i, phase, r.err)
			}
			if r.sum != sums[i] {
				return fmt.Errorf("read f%d (%s): checksum %08x, want %08x", i, phase, r.sum, sums[i])
			}
			t.Eventf("read f%d ok (%s) n=%d sum=%08x", i, phase, r.n, r.sum)
		}
		return nil
	}
}

// readAll runs startReads and joins immediately — for phases without a
// concurrent fault to script.
func readAll(ctx context.Context, t *T, cl *client.Client, sums []uint32, phase string) error {
	return startReads(ctx, t, cl, sums, phase)()
}
