package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock abstracts the passage of time for scenario scripts, so the same
// timeline can run against real sleeps (integration runs) or a virtual
// clock (scheduler unit tests) without changing the scenario.
type Clock interface {
	// Sleep blocks the scripted timeline for d.
	Sleep(d time.Duration)
}

// RealClock sleeps on the wall clock.
type RealClock struct{}

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock advances instantly, accumulating the logical time slept.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// Sleep implements Clock by advancing the virtual time.
func (c *VirtualClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Now returns the accumulated virtual time.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Scheduler executes a scenario's fault timeline: named steps at logical
// offsets from the scenario start. Steps run sequentially in offset order
// (ties in insertion order), each recorded in the trace with its logical
// time — so the trace is identical however long the steps themselves
// take. Anything concurrent (the reads a fault interrupts) is started by
// a step and joined by a later step.
type Scheduler struct {
	steps []step
}

type step struct {
	at   time.Duration
	name string
	do   func() error
}

// At schedules step name at the given offset from the timeline start.
func (s *Scheduler) At(at time.Duration, name string, do func() error) {
	s.steps = append(s.steps, step{at: at, name: name, do: do})
}

// Run executes the timeline against t's clock, recording each step.
func (s *Scheduler) Run(t *T) error {
	sort.SliceStable(s.steps, func(i, j int) bool { return s.steps[i].at < s.steps[j].at })
	var now time.Duration
	for _, st := range s.steps {
		if st.at > now {
			t.Clock.Sleep(st.at - now)
			now = st.at
		}
		t.Eventf("t=%s %s", st.at, st.name)
		if err := st.do(); err != nil {
			return fmt.Errorf("chaos: step %q: %w", st.name, err)
		}
	}
	return nil
}
