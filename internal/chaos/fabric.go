package chaos

import (
	"fmt"
	"sync"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// CapacityFabric is the slice of the network-fabric contract link faults
// need: both fabric backends (netsim.Sim, emunet.Network and its driver
// Fabric) satisfy it, so one injector cuts links under a virtual-time
// simulation and under a live emulated deployment alike.
type CapacityFabric interface {
	Topology() *topology.Topology
	SetLinkCapacity(id topology.LinkID, bps float64)
}

// LinkFaults injects link and node faults into a network fabric by
// driving link capacities to zero — the fabric-level truth of a pulled
// cable or a dead switch: flows crossing the link starve (making no
// progress, not erroring) until the fault heals and capacity returns.
// Restore capacities come from the topology's nominal link capacities.
// All methods are idempotent and safe for concurrent use.
type LinkFaults struct {
	fab CapacityFabric

	mu  sync.Mutex
	cut map[topology.LinkID]bool
}

// NewLinkFaults creates an injector over a fabric.
func NewLinkFaults(fab CapacityFabric) *LinkFaults {
	return &LinkFaults{fab: fab, cut: make(map[topology.LinkID]bool)}
}

// CutLink kills one directed link.
func (lf *LinkFaults) CutLink(id topology.LinkID) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	lf.cutLocked(id)
}

func (lf *LinkFaults) cutLocked(id topology.LinkID) {
	if lf.cut[id] {
		return
	}
	lf.cut[id] = true
	lf.fab.SetLinkCapacity(id, 0)
}

// RestoreLink brings one directed link back at its nominal capacity.
func (lf *LinkFaults) RestoreLink(id topology.LinkID) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	lf.restoreLocked(id)
}

func (lf *LinkFaults) restoreLocked(id topology.LinkID) {
	if !lf.cut[id] {
		return
	}
	delete(lf.cut, id)
	lf.fab.SetLinkCapacity(id, lf.fab.Topology().Link(id).Capacity)
}

// CutNode kills every link touching a node, isolating it — a switch
// losing power, or a host's NIC going dark.
func (lf *LinkFaults) CutNode(n topology.NodeID) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	for _, l := range lf.fab.Topology().Links() {
		if l.From == n || l.To == n {
			lf.cutLocked(l.ID)
		}
	}
}

// RestoreNode brings every link touching a node back.
func (lf *LinkFaults) RestoreNode(n topology.NodeID) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	for _, l := range lf.fab.Topology().Links() {
		if l.From == n || l.To == n {
			lf.restoreLocked(l.ID)
		}
	}
}

// RestoreAll heals every outstanding fault.
func (lf *LinkFaults) RestoreAll() {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	for id := range lf.cut {
		lf.restoreLocked(id)
	}
}

// NumCut returns the number of currently dead links.
func (lf *LinkFaults) NumCut() int {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return len(lf.cut)
}

// String summarizes the injector state for scenario traces.
func (lf *LinkFaults) String() string {
	return fmt.Sprintf("linkfaults(%d cut)", lf.NumCut())
}
