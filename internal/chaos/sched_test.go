package chaos

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// The scheduler against a virtual clock: steps run in offset order (ties
// in insertion order), logical times land in the trace, and no wall time
// passes.
func TestSchedulerVirtualClock(t *testing.T) {
	clock := &VirtualClock{}
	tt := NewT(1, t.TempDir())
	tt.Clock = clock

	var order []string
	step := func(name string) func() error {
		return func() error {
			order = append(order, name)
			return nil
		}
	}
	s := &Scheduler{}
	s.At(20*time.Millisecond, "late", step("late"))
	s.At(0, "first", step("first"))
	s.At(10*time.Millisecond, "mid-a", step("mid-a"))
	s.At(10*time.Millisecond, "mid-b", step("mid-b"))
	start := time.Now()
	if err := s.Run(tt); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("virtual run took wall time %v", elapsed)
	}

	want := []string{"first", "mid-a", "mid-b", "late"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("step order %v, want %v", order, want)
	}
	if got := clock.Now(); got != 20*time.Millisecond {
		t.Fatalf("virtual clock at %v, want 20ms", got)
	}
	trace := tt.Trace()
	wantTrace := []string{"t=0s first", "t=10ms mid-a", "t=10ms mid-b", "t=20ms late"}
	if fmt.Sprint(trace) != fmt.Sprint(wantTrace) {
		t.Fatalf("trace %q, want %q", trace, wantTrace)
	}
}

func TestSchedulerStopsOnStepError(t *testing.T) {
	tt := NewT(1, t.TempDir())
	tt.Clock = &VirtualClock{}
	boom := errors.New("boom")
	ran := false
	s := &Scheduler{}
	s.At(0, "fails", func() error { return boom })
	s.At(time.Millisecond, "never runs", func() error { ran = true; return nil })
	err := s.Run(tt)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran {
		t.Fatal("later step ran after a failure")
	}
}
