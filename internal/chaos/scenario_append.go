package chaos

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"github.com/mayflower-dfs/mayflower/internal/client"
	"github.com/mayflower-dfs/mayflower/internal/nameserver"
	"github.com/mayflower-dfs/mayflower/internal/repair"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
)

// KillPrimaryMidAppend kills a file's primary replica while a multi-piece
// append is streaming through it, then runs a repair pass that promotes a
// survivor, and asserts:
//
//   - the append completes successfully once repair re-elects a primary
//     (the client retries pieces across the failover, re-sending under
//     stable sequence numbers);
//   - the file ends at exactly prefix+tail bytes with the prefix||tail
//     checksum — the retries never duplicated or dropped a piece;
//   - the repair pass declares exactly the victim dead and re-replicates
//     the file's lost replica.
func KillPrimaryMidAppend(ctx context.Context, t *T) error {
	d, err := newDeployment(t, testbed.ModeMayflower)
	if err != nil {
		return err
	}
	defer d.Close()

	// The scripted gap between the kill and the repair pass is ~600 ms;
	// give the retry loop enough passes (25 ms base, doubling) to still be
	// trying well after the promotion lands, and shrink the piece size so
	// the tail append spans several pieces.
	cl, err := d.cluster.NewClient(d.hosts[0], func(o *client.Options) {
		o.WriteRetries = 8
		o.RetryBackoff = 25 * time.Millisecond
		o.AppendPieceBytes = 32 << 10
	})
	if err != nil {
		return err
	}

	reps := d.pickReplicas(t, 3)
	victim := reps[0] // the primary orders appends; kill exactly it
	host := d.hostOf[victim]
	if _, err := cl.Create(ctx, "w0", nameserver.CreateOptions{
		Replication:       3,
		PreferredReplicas: reps,
	}); err != nil {
		return fmt.Errorf("create w0: %w", err)
	}
	prefix := t.Payload("w0-prefix", 64<<10)
	if _, err := cl.Append(ctx, "w0", prefix); err != nil {
		return fmt.Errorf("append prefix: %w", err)
	}
	tail := t.Payload("w0-tail", 128<<10) // 4 pieces at 32 KiB
	want := append(append([]byte(nil), prefix...), tail...)
	t.Eventf("created w0 prefix=%d tail=%d replicas=%v sum=%08x",
		len(prefix), len(tail), reps, Checksum(want))

	// The tail append runs concurrently with the kill; the join step
	// observes only its final outcome, so the trace is identical however
	// many retry passes the failover takes.
	appendDone := make(chan error, 1)
	var gotSize int64
	sched := &Scheduler{}
	sched.At(0, "start tail append", func() error {
		go func() {
			size, err := cl.Append(ctx, "w0", tail)
			gotSize = size
			appendDone <- err
		}()
		return nil
	})
	sched.At(2*time.Millisecond, fmt.Sprintf("kill primary %s", victim), func() error {
		_, err := d.cluster.KillDataserver(host)
		return err
	})
	// Past the heartbeat-silence threshold: liveness has confirmed the
	// death, so a repair pass can promote a survivor and re-replicate.
	sched.At(600*time.Millisecond, "repair pass promotes a survivor", func() error {
		mon := repair.NewMonitor(repair.Config{
			Service:   d.cluster.NameserverService(),
			DeadAfter: 250 * time.Millisecond,
		})
		res, err := mon.Pass(ctx)
		if err != nil {
			return err
		}
		if len(res.Dead) != 1 || res.Dead[0] != victim {
			return fmt.Errorf("declared dead %v, want [%s]", res.Dead, victim)
		}
		if len(res.Lost) > 0 || len(res.Faults) > 0 {
			return fmt.Errorf("repair lost=%v faults=%v", res.Lost, res.Faults)
		}
		if res.Repaired != 1 {
			return fmt.Errorf("repaired %d replicas, want 1", res.Repaired)
		}
		t.Eventf("declared dead: %v, re-replicated %d replica", res.Dead, res.Repaired)
		return nil
	})
	sched.At(610*time.Millisecond, "join tail append", func() error {
		if err := <-appendDone; err != nil {
			return fmt.Errorf("append across failover: %w", err)
		}
		if gotSize != int64(len(want)) {
			return fmt.Errorf("append returned size %d, want %d", gotSize, len(want))
		}
		t.Eventf("append ok size=%d", gotSize)
		return nil
	})
	sched.At(620*time.Millisecond, "verify no bytes duplicated or lost", func() error {
		data, err := cl.ReadAll(ctx, "w0")
		if err != nil {
			return fmt.Errorf("read w0 post-failover: %w", err)
		}
		if len(data) != len(want) {
			return fmt.Errorf("read %d bytes, want %d", len(data), len(want))
		}
		if !bytes.Equal(data, want) {
			return fmt.Errorf("read checksum %08x, want %08x", Checksum(data), Checksum(want))
		}
		t.Eventf("read w0 ok n=%d sum=%08x", len(data), Checksum(data))
		return nil
	})
	return sched.Run(t)
}
