package chaos

import (
	"context"
	"flag"
	"strings"
	"testing"
	"time"
)

// The seed is a first-class test input: every random choice a scenario
// makes derives from it, and it is printed on failure so a failing run
// can be replayed exactly:
//
//	go test ./internal/chaos -run Scenario/KillDataserver -seed 42
var seedFlag = flag.Int64("seed", 42, "seed driving chaos scenario randomness")

// TestScenario runs every scripted fault-injection scenario twice with
// the same seed and asserts the event traces are identical — the
// reproducibility contract the harness promises.
func TestScenario(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			first := runScenario(t, sc, *seedFlag)
			second := runScenario(t, sc, *seedFlag)
			if len(first) != len(second) {
				t.Fatalf("seed %d: trace lengths differ: %d vs %d\nfirst:\n  %s\nsecond:\n  %s",
					*seedFlag, len(first), len(second),
					strings.Join(first, "\n  "), strings.Join(second, "\n  "))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("seed %d: traces diverge at event %d:\n  %q\nvs\n  %q",
						*seedFlag, i, first[i], second[i])
				}
			}
		})
	}
}

func runScenario(t *testing.T, sc Scenario, seed int64) []string {
	t.Helper()
	tt := NewT(seed, t.TempDir())
	tt.Logf = t.Logf
	// The deadline is the no-hang assertion: every scenario must finish
	// long before it, faults and all.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sc.Run(ctx, tt); err != nil {
		t.Fatalf("seed %d: %v\ntrace so far:\n  %s", seed, err, strings.Join(tt.Trace(), "\n  "))
	}
	return tt.Trace()
}
