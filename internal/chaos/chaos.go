// Package chaos is a deterministic, seed-driven fault-injection harness
// for the in-process Mayflower deployment (testbed.Cluster plus the
// Paxos-replicated nameserver). Each scenario scripts a fault timeline —
// kill a dataserver mid-read, drop or stall the Flowserver's RPCs, crash
// and recover a nameserver replica, partition a rack — against real
// components over loopback TCP, and asserts the system-level invariant
// the fault must not break (reads complete, errors surface instead of
// hangs, recovery converges).
//
// Reproducibility contract: a scenario's entire random behaviour (replica
// placement, victim choice, payload bytes) derives from the seed in T, and
// its event trace records only logical facts — scripted step times, file
// names, server ids, byte counts, checksums — never wall-clock times or
// completion interleavings. The same seed therefore yields the identical
// trace, run to run, which the package test asserts by running every
// scenario twice.
package chaos

import (
	"context"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
)

// T is the context a scenario runs against: the seed, its derived rng,
// the clock driving scripted delays, and the event trace.
type T struct {
	// Seed drives every random choice the scenario makes.
	Seed int64
	// WorkDir holds scenario state (chunk stores, nameserver databases).
	WorkDir string
	// Clock paces scripted steps; RealClock if nil.
	Clock Clock
	// Logf, when set, mirrors every trace event (to a testing.T, say).
	Logf func(format string, args ...any)

	rngOnce sync.Once
	rng     *rand.Rand

	mu    sync.Mutex
	trace []string
}

// NewT creates a scenario context for the given seed.
func NewT(seed int64, workDir string) *T {
	return &T{Seed: seed, WorkDir: workDir, Clock: RealClock{}}
}

// Intn draws the next deterministic random integer in [0, n). Scenarios
// must draw in a fixed (single-goroutine) order for reproducibility.
func (t *T) Intn(n int) int {
	t.rngOnce.Do(func() { t.rng = rand.New(rand.NewSource(t.Seed)) })
	return t.rng.Intn(n)
}

// Payload returns size deterministic bytes for the tagged object, derived
// from the seed so different seeds exercise different data.
func (t *T) Payload(tag string, size int) []byte {
	h := int64(crc32.ChecksumIEEE([]byte(tag)))
	r := rand.New(rand.NewSource(t.Seed ^ h))
	buf := make([]byte, size)
	r.Read(buf)
	return buf
}

// Eventf appends one event to the trace. Events must contain only logical
// facts (step names, ids, sizes, checksums) — never wall-clock readings.
func (t *T) Eventf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	t.mu.Lock()
	t.trace = append(t.trace, msg)
	t.mu.Unlock()
	if t.Logf != nil {
		t.Logf("chaos: %s", msg)
	}
}

// Trace returns a copy of the events recorded so far.
func (t *T) Trace() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.trace...)
}

// Checksum is the digest recorded in traces for payload integrity.
func Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// Scenario is one scripted fault-injection run.
type Scenario struct {
	// Name identifies the scenario (go test -run Scenario/<Name>).
	Name string
	// Run executes the scenario, recording its trace into t and
	// returning an error when an invariant is violated.
	Run func(ctx context.Context, t *T) error
}

// Scenarios lists every scripted scenario.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "KillDataserver", Run: KillDataserverMidRead},
		{Name: "KillPrimaryMidAppend", Run: KillPrimaryMidAppend},
		{Name: "FlowserverUnreachable", Run: FlowserverUnreachable},
		{Name: "FlowserverStall", Run: FlowserverStall},
		{Name: "KillFlowserverShardMidSelect", Run: KillFlowserverShardMidSelect},
		{Name: "NameserverReplicaCrash", Run: NameserverReplicaCrash},
		{Name: "StaleCacheAfterRepair", Run: StaleCacheAfterRepair},
		{Name: "PartitionRack", Run: PartitionRack},
	}
}
