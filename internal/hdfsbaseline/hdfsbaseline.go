// Package hdfsbaseline reproduces HDFS's read-side replica selection for
// the paper's prototype comparison (§6.7): "HDFS selects the replica in
// the same rack where the client is located, if any such replica exists";
// otherwise the choice is effectively random. Plugging this picker into
// the Mayflower client (instead of the Flowserver) yields the HDFS
// baseline running over the identical server substrate, so Figure 8
// isolates exactly the selection policy.
package hdfsbaseline

import (
	"math/rand"
	"strings"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

// Locator maps a topology host name to its (pod, rack) coordinates; ok is
// false for unknown hosts.
type Locator func(host string) (pod, rack int, ok bool)

// RackAwarePicker returns a replica picker implementing HDFS's rack-aware
// read policy for a client at the given host: a replica on the client's
// own host wins, then a replica in the client's rack, then a uniformly
// random replica.
func RackAwarePicker(clientHost string, locate Locator, rng *rand.Rand) func(nameserver.FileInfo) nameserver.ReplicaLoc {
	clientPod, clientRack, clientKnown := locate(clientHost)
	return func(info nameserver.FileInfo) nameserver.ReplicaLoc {
		for _, rep := range info.Replicas {
			if rep.Host == clientHost {
				return rep
			}
		}
		if clientKnown {
			var local []nameserver.ReplicaLoc
			for _, rep := range info.Replicas {
				if pod, rack, ok := locate(rep.Host); ok && pod == clientPod && rack == clientRack {
					local = append(local, rep)
				}
			}
			if len(local) > 0 {
				return local[rng.Intn(len(local))]
			}
		}
		return info.Replicas[rng.Intn(len(info.Replicas))]
	}
}

// NameLocator derives (pod, rack) from this repository's canonical host
// naming scheme ("host-p<pod>-r<rack>-h<idx>"), avoiding a topology
// dependency for deployments that follow it.
func NameLocator(host string) (pod, rack int, ok bool) {
	parts := strings.Split(host, "-")
	if len(parts) != 4 || parts[0] != "host" {
		return 0, 0, false
	}
	p, okP := parseCoord(parts[1], 'p')
	r, okR := parseCoord(parts[2], 'r')
	if !okP || !okR {
		return 0, 0, false
	}
	return p, r, true
}

func parseCoord(s string, prefix byte) (int, bool) {
	if len(s) < 2 || s[0] != prefix {
		return 0, false
	}
	n := 0
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
