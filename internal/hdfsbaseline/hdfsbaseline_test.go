package hdfsbaseline

import (
	"math/rand"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/nameserver"
)

func info(hosts ...string) nameserver.FileInfo {
	fi := nameserver.FileInfo{}
	for _, h := range hosts {
		fi.Replicas = append(fi.Replicas, nameserver.ReplicaLoc{ServerID: "ds-" + h, Host: h})
	}
	return fi
}

func TestNameLocator(t *testing.T) {
	tests := []struct {
		host      string
		pod, rack int
		ok        bool
	}{
		{"host-p0-r0-h0", 0, 0, true},
		{"host-p3-r12-h1", 3, 12, true},
		{"host-p10-r2-h40", 10, 2, true},
		{"gateway-1", 0, 0, false},
		{"host-x0-r0-h0", 0, 0, false},
		{"host-p0-rX-h0", 0, 0, false},
		{"host-p-r1-h0", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, tt := range tests {
		pod, rack, ok := NameLocator(tt.host)
		if ok != tt.ok || (ok && (pod != tt.pod || rack != tt.rack)) {
			t.Errorf("NameLocator(%q) = (%d, %d, %v), want (%d, %d, %v)",
				tt.host, pod, rack, ok, tt.pod, tt.rack, tt.ok)
		}
	}
}

func TestRackAwarePickerPrefersLocalHost(t *testing.T) {
	pick := RackAwarePicker("host-p0-r0-h0", NameLocator, rand.New(rand.NewSource(1)))
	fi := info("host-p1-r0-h0", "host-p0-r0-h0", "host-p2-r0-h0")
	got := pick(fi)
	if got.Host != "host-p0-r0-h0" {
		t.Errorf("pick = %s, want co-located replica", got.Host)
	}
}

func TestRackAwarePickerPrefersRack(t *testing.T) {
	pick := RackAwarePicker("host-p0-r1-h0", NameLocator, rand.New(rand.NewSource(2)))
	fi := info("host-p1-r0-h0", "host-p0-r1-h3", "host-p2-r0-h0")
	for i := 0; i < 20; i++ {
		if got := pick(fi); got.Host != "host-p0-r1-h3" {
			t.Fatalf("pick = %s, want rack-local replica", got.Host)
		}
	}
}

func TestRackAwarePickerRandomFallback(t *testing.T) {
	pick := RackAwarePicker("host-p3-r3-h0", NameLocator, rand.New(rand.NewSource(3)))
	fi := info("host-p1-r0-h0", "host-p0-r1-h3", "host-p2-r0-h0")
	seen := make(map[string]int)
	for i := 0; i < 600; i++ {
		seen[pick(fi).Host]++
	}
	if len(seen) != 3 {
		t.Fatalf("fallback used %d replicas, want all 3: %v", len(seen), seen)
	}
	for host, n := range seen {
		if n < 100 {
			t.Errorf("replica %s picked only %d/600 times", host, n)
		}
	}
}

func TestRackAwarePickerUnknownClientHost(t *testing.T) {
	pick := RackAwarePicker("mystery-host", NameLocator, rand.New(rand.NewSource(4)))
	fi := info("host-p1-r0-h0", "host-p2-r0-h0")
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		seen[pick(fi).Host] = true
	}
	if len(seen) != 2 {
		t.Errorf("unknown client host should fall back to random: %v", seen)
	}
}
