package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mayflower-dfs/mayflower/internal/testutil"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

const tol = 1e-6

func near(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func newSim(t *testing.T) *Sim {
	t.Helper()
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return New(topo)
}

// pathBetween returns the first shortest path between two hosts.
func pathBetween(t *testing.T, s *Sim, a, b topology.NodeID) topology.Path {
	t.Helper()
	paths := s.Topology().ShortestPaths(a, b)
	if len(paths) == 0 {
		t.Fatalf("no path between %v and %v", a, b)
	}
	return paths[0]
}

func TestSingleFlowCompletionTime(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(0, 0, 1) // same rack: 1 Gbps bottleneck

	var done float64 = -1
	s.StartFlow(FlowConfig{
		Links:      pathBetween(t, s, src, dst),
		Bits:       1e9, // 1 Gb over 1 Gbps = 1 s
		OnComplete: func(end float64) { done = end },
	})
	s.Run()
	if !near(done, 1.0) {
		t.Errorf("completion time = %g, want 1.0", done)
	}
	if s.NumActiveFlows() != 0 {
		t.Errorf("NumActiveFlows = %d after Run", s.NumActiveFlows())
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(0, 0, 1)
	path := pathBetween(t, s, src, dst)

	var t1, t2 float64
	s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(e float64) { t1 = e }})
	s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(e float64) { t2 = e }})
	s.Run()
	// Both share the 1 Gbps host downlink equally: each runs at 0.5 Gbps
	// until both finish at t=2.
	if !near(t1, 2.0) || !near(t2, 2.0) {
		t.Errorf("completions = %g, %g; want 2.0, 2.0", t1, t2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(0, 0, 1)
	path := pathBetween(t, s, src, dst)

	var tShort, tLong float64
	s.StartFlow(FlowConfig{Links: path, Bits: 0.5e9, OnComplete: func(e float64) { tShort = e }})
	s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(e float64) { tLong = e }})
	s.Run()
	// Short: 0.5 Gb at 0.5 Gbps → done at t=1. Long: 0.5 Gb delivered by
	// t=1, the rest at full rate → 1 + 0.5 = 1.5 s.
	if !near(tShort, 1.0) {
		t.Errorf("short completion = %g, want 1.0", tShort)
	}
	if !near(tLong, 1.5) {
		t.Errorf("long completion = %g, want 1.5", tLong)
	}
}

func TestLateArrivalSlowsExistingFlow(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(0, 0, 1)
	path := pathBetween(t, s, src, dst)

	var tFirst float64
	s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(e float64) { tFirst = e }})
	s.Schedule(0.5, func() {
		s.StartFlow(FlowConfig{Links: path, Bits: 1e9})
	})
	s.Run()
	// First flow: 0.5 Gb alone (0.5 s), remaining 0.5 Gb at half rate
	// (1 s) → finishes at 1.5 s.
	if !near(tFirst, 1.5) {
		t.Errorf("first completion = %g, want 1.5", tFirst)
	}
}

func TestCancelFlowRestoresRate(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(0, 0, 1)
	path := pathBetween(t, s, src, dst)

	var tFirst float64
	s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(e float64) { tFirst = e }})
	victim := s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(float64) {
		t.Error("cancelled flow ran its completion callback")
	}})
	s.Schedule(1.0, func() { s.CancelFlow(victim) })
	s.Run()
	// First flow: 0.5 Gb in the first second (shared), then full rate →
	// 1 + 0.5 = 1.5 s.
	if !near(tFirst, 1.5) {
		t.Errorf("first completion = %g, want 1.5", tFirst)
	}
	// Cancelling again is a no-op.
	s.CancelFlow(victim)
}

func TestCrossPodPathBottleneck(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(1, 0, 0)
	path := pathBetween(t, s, src, dst)

	var done float64
	s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(e float64) { done = e }})
	s.Run()
	// At 8:1 oversubscription the agg-core links are 500 Mbps, so a lone
	// cross-pod flow takes 2 s for 1 Gb.
	if !near(done, 2.0) {
		t.Errorf("completion = %g, want 2.0", done)
	}
}

func TestFlowCountersMatchProgress(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src := topo.HostAt(0, 0, 0)
	dst := topo.HostAt(0, 0, 1)
	path := pathBetween(t, s, src, dst)

	id := s.StartFlow(FlowConfig{Links: path, Bits: 1e9})
	s.RunUntil(0.25)
	if got := s.FlowTransferred(id); !near(got, 0.25e9) {
		t.Errorf("FlowTransferred = %g, want 0.25e9", got)
	}
	if got := s.FlowRemaining(id); !near(got, 0.75e9) {
		t.Errorf("FlowRemaining = %g, want 0.75e9", got)
	}
	if got := s.FlowRate(id); !near(got, 1e9) {
		t.Errorf("FlowRate = %g, want 1e9", got)
	}
	for _, l := range path {
		if got := s.LinkTransferred(l); !near(got, 0.25e9) {
			t.Errorf("LinkTransferred(%d) = %g, want 0.25e9", l, got)
		}
		if got := s.LinkRate(l); !near(got, 1e9) {
			t.Errorf("LinkRate(%d) = %g, want 1e9", l, got)
		}
	}
	s.Run()
	if got := s.FlowTransferred(id); got != 0 {
		t.Errorf("FlowTransferred after completion = %g, want 0 (entry evicted)", got)
	}
	for _, l := range path {
		if got := s.LinkTransferred(l); !near(got, 1e9) {
			t.Errorf("LinkTransferred(%d) = %g, want 1e9", l, got)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := newSim(t)
	s.RunUntil(3.5)
	if !near(s.Now(), 3.5) {
		t.Errorf("Now = %g, want 3.5", s.Now())
	}
	fired := false
	s.Schedule(4.0, func() { fired = true })
	s.RunUntil(3.9)
	if fired {
		t.Error("event at t=4 fired before RunUntil(3.9) completed")
	}
	s.RunUntil(4.0)
	if !fired {
		t.Error("event at t=4 did not fire by RunUntil(4.0)")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := newSim(t)
	s.RunUntil(1)
	defer func() {
		if recover() == nil {
			t.Error("Schedule in the past did not panic")
		}
	}()
	s.Schedule(0.5, func() {})
}

func TestStartFlowNegativePanics(t *testing.T) {
	s := newSim(t)
	defer func() {
		if recover() == nil {
			t.Error("StartFlow with negative size did not panic")
		}
	}()
	s.StartFlow(FlowConfig{Bits: -1})
}

func TestZeroSizeFlowCompletesImmediately(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	path := pathBetween(t, s, topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))
	var done float64 = -1
	s.StartFlow(FlowConfig{Links: path, Bits: 0, OnComplete: func(e float64) { done = e }})
	s.Run()
	if !near(done, 0) {
		t.Errorf("zero-size completion = %g, want 0", done)
	}
}

func TestCompletionCallbackCanStartFlows(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	path := pathBetween(t, s, topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))

	var second float64
	s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(float64) {
		s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(e float64) { second = e }})
	}})
	s.Run()
	if !near(second, 2.0) {
		t.Errorf("chained completion = %g, want 2.0", second)
	}
}

func TestEventOrderDeterministic(t *testing.T) {
	s := newSim(t)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(1.0, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("event order %v, want ascending schedule order", order)
		}
	}
}

// TestManyFlowsConservation property-checks that total delivered bits equal
// the sum of flow sizes and that no host downlink ever carried more than
// its capacity times the elapsed time.
func TestManyFlowsConservation(t *testing.T) {
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(topo)
		var total float64
		n := 3 + r.Intn(20)
		var lastEnd float64
		for i := 0; i < n; i++ {
			src := hosts[r.Intn(len(hosts))]
			dst := hosts[r.Intn(len(hosts))]
			if src == dst {
				continue
			}
			paths := topo.ShortestPaths(src, dst)
			path := paths[r.Intn(len(paths))]
			bits := 1e6 * (1 + r.Float64()*100)
			total += bits
			start := r.Float64() * 2
			s.Schedule(start, func() {
				s.StartFlow(FlowConfig{Links: path, Bits: bits, OnComplete: func(e float64) {
					if e > lastEnd {
						lastEnd = e
					}
				}})
			})
		}
		s.Run()
		if s.NumActiveFlows() != 0 {
			t.Logf("seed %d: %d flows still active after Run", seed, s.NumActiveFlows())
			return false
		}
		var delivered float64
		for _, h := range hosts {
			down := topo.DownlinkOf(h)
			bits := s.LinkTransferred(down)
			delivered += bits
			if bits > topo.Link(down).Capacity*lastEnd*(1+tol)+tol {
				t.Logf("seed %d: downlink of %v carried %g bits in %g s, over capacity", seed, h, bits, lastEnd)
				return false
			}
		}
		if math.Abs(delivered-total) > tol*(1+total) {
			t.Logf("seed %d: delivered %g bits of %g started", seed, delivered, total)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: testutil.Rand(t, 17)}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimThousandFlows(b *testing.B) {
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		b.Fatal(err)
	}
	hosts := topo.Hosts()
	r := testutil.Rand(b, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(topo)
		for j := 0; j < 1000; j++ {
			src := hosts[r.Intn(len(hosts))]
			dst := hosts[r.Intn(len(hosts))]
			if src == dst {
				continue
			}
			paths := topo.ShortestPaths(src, dst)
			path := paths[r.Intn(len(paths))]
			start := r.Float64() * 10
			s.Schedule(start, func() {
				s.StartFlow(FlowConfig{Links: path, Bits: 256e6})
			})
		}
		s.Run()
	}
}

// TestCounterDerivedBandwidthMatchesRate validates the observation path
// the Flowserver depends on: bandwidth computed from byte-counter deltas
// over a polling interval equals the ground-truth allocated rate while
// the flow set is stable.
func TestCounterDerivedBandwidthMatchesRate(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	path := pathBetween(t, s, topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1))

	a := s.StartFlow(FlowConfig{Links: path, Bits: 10e9})
	b := s.StartFlow(FlowConfig{Links: path, Bits: 10e9})

	prevA, prevB := s.FlowTransferred(a), s.FlowTransferred(b)
	prevT := s.Now()
	for poll := 0; poll < 4; poll++ {
		s.RunUntil(prevT + 0.5)
		curA, curB := s.FlowTransferred(a), s.FlowTransferred(b)
		dt := s.Now() - prevT
		measuredA := (curA - prevA) / dt
		measuredB := (curB - prevB) / dt
		if !near(measuredA, s.FlowRate(a)) {
			t.Fatalf("poll %d: measured %g vs rate %g", poll, measuredA, s.FlowRate(a))
		}
		if !near(measuredB, s.FlowRate(b)) {
			t.Fatalf("poll %d: measured %g vs rate %g", poll, measuredB, s.FlowRate(b))
		}
		if !near(measuredA+measuredB, 1e9) {
			t.Fatalf("poll %d: combined measured %g, want link capacity", poll, measuredA+measuredB)
		}
		prevA, prevB, prevT = curA, curB, s.Now()
	}
}

// TestLinkRateSums checks LinkRate equals the sum of the rates of flows
// crossing the link.
func TestLinkRateSums(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src1, src2, dst := topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 2), topo.HostAt(0, 0, 1)
	p1 := pathBetween(t, s, src1, dst)
	p2 := pathBetween(t, s, src2, dst)

	a := s.StartFlow(FlowConfig{Links: p1, Bits: 1e9})
	b := s.StartFlow(FlowConfig{Links: p2, Bits: 1e9})
	down := topo.DownlinkOf(dst)
	if got, want := s.LinkRate(down), s.FlowRate(a)+s.FlowRate(b); !near(got, want) {
		t.Fatalf("LinkRate = %g, want %g", got, want)
	}
	if !near(s.LinkRate(down), 1e9) {
		t.Fatalf("shared downlink rate = %g, want saturated", s.LinkRate(down))
	}
}

// TestRunReportsStalledFlows checks that Run does not return silently when
// the event queue drains with zero-rate flows still active (a flow starved
// by a dead link would otherwise hang the experiment invisibly).
func TestRunReportsStalledFlows(t *testing.T) {
	s := newSim(t)
	topo := s.Topology()
	src, dst := topo.HostAt(0, 0, 0), topo.HostAt(0, 0, 1)
	path := pathBetween(t, s, src, dst)

	// Kill the destination downlink: the flow is admitted but allocated
	// zero bandwidth and can never complete.
	s.SetLinkCapacity(topo.DownlinkOf(dst), 0)
	completed := false
	id := s.StartFlow(FlowConfig{Links: path, Bits: 1e9, OnComplete: func(float64) { completed = true }})
	if r := s.FlowRate(id); r != 0 {
		t.Fatalf("starved flow rate = %g, want 0", r)
	}

	err := s.Run()
	if err == nil {
		t.Fatal("Run returned nil with a stalled flow active")
	}
	if completed {
		t.Error("starved flow reported completion")
	}
	if got := s.Stalled(); len(got) != 1 || got[0] != id {
		t.Errorf("Stalled() = %v, want [%d]", got, id)
	}

	// Reviving the link lets the flow finish and clears the stall.
	s.SetLinkCapacity(topo.DownlinkOf(dst), 1e9)
	if err := s.Run(); err != nil {
		t.Fatalf("Run after reviving link: %v", err)
	}
	if !completed || len(s.Stalled()) != 0 {
		t.Errorf("completed=%v stalled=%v after revival", completed, s.Stalled())
	}
}

// TestSetLinkCapacityNegativePanics pins the contract that capacities are
// non-negative.
func TestSetLinkCapacityNegativePanics(t *testing.T) {
	s := newSim(t)
	defer func() {
		if recover() == nil {
			t.Error("negative capacity did not panic")
		}
	}()
	s.SetLinkCapacity(0, -1)
}
