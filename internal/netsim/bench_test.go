package netsim

import (
	"math/rand"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/testutil"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// churnTopo is a 512-host fabric (8 pods x 8 racks x 8 hosts) large enough
// to hold tens of thousands of concurrent flows, with the paper testbed's
// 2:1 edge tier and an 8:1 core tier.
func churnTopo(b *testing.B) *topology.Topology {
	b.Helper()
	topo, err := topology.New(topology.Config{
		Pods: 8, RacksPerPod: 8, HostsPerRack: 8, AggsPerPod: 2, Cores: 4,
		EdgeLinkBps:    topology.Gbps(1),
		EdgeAggLinkBps: topology.Gbps(4),
		AggCoreLinkBps: topology.Gbps(4),
	})
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// localityPath draws a random shortest path with the paper's rack-heavy
// client locality mix (0.5 rack, 0.3 pod, 0.2 cross-pod).
func localityPath(r *rand.Rand, topo *topology.Topology) topology.Path {
	cfg := topo.Config()
	for {
		src := topo.Hosts()[r.Intn(topo.NumHosts())]
		n := topo.Node(src)
		var dst topology.NodeID
		switch p := r.Float64(); {
		case p < 0.5: // same rack
			dst = topo.HostAt(n.Pod, n.Rack, r.Intn(cfg.HostsPerRack))
		case p < 0.8: // same pod
			dst = topo.HostAt(n.Pod, r.Intn(cfg.RacksPerPod), r.Intn(cfg.HostsPerRack))
		default: // cross pod
			dst = topo.HostAt(r.Intn(cfg.Pods), r.Intn(cfg.RacksPerPod), r.Intn(cfg.HostsPerRack))
		}
		if dst == src {
			continue
		}
		paths := topo.ShortestPaths(src, dst)
		return paths[r.Intn(len(paths))]
	}
}

// BenchmarkNetsimChurn measures the per-event cost of the rate allocator
// under steady churn: n flows stay active while each iteration retires one
// flow and admits another, forcing two reallocations. This is the netsim
// hot path the experiment harness exercises thousands of times per run.
func BenchmarkNetsimChurn(b *testing.B) {
	for _, bc := range []struct {
		name string
		n    int
	}{{"1k", 1000}, {"10k", 10000}} {
		b.Run(bc.name, func(b *testing.B) {
			topo := churnTopo(b)
			r := testutil.Rand(b, 42)
			// Path pool, reused round-robin for admissions.
			pool := make([]topology.Path, bc.n+4096)
			for i := range pool {
				pool[i] = localityPath(r, topo)
			}
			s := New(topo)
			ids := make([]FlowID, bc.n)
			for i := 0; i < bc.n; i++ {
				// Large enough that no flow completes during the benchmark.
				ids[i] = s.StartFlow(FlowConfig{Links: pool[i], Bits: 1e15})
			}
			next := bc.n
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % bc.n
				s.CancelFlow(ids[slot])
				ids[slot] = s.StartFlow(FlowConfig{Links: pool[next%len(pool)], Bits: 1e15})
				next++
			}
		})
	}
}
