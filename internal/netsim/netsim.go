// Package netsim is a flow-level, event-driven datacenter network
// simulator. It is the "simulations" half of the Mayflower evaluation
// (§6): flows traverse directed link paths through a topology, share link
// bandwidth max-min fairly (the steady-state behaviour of long TCP flows),
// and complete when their bytes are delivered.
//
// The simulator exposes two views of its state:
//
//   - Ground truth (FlowRate, FlowRemaining), used by tests and by the
//     simulator itself.
//
//   - Counter-based observations (FlowTransferred, LinkTransferred), the
//     byte counters an OpenFlow edge switch would export. The Flowserver's
//     stats collector is built on these, so its bandwidth estimates carry
//     the same staleness they would against real switches.
//
// Rate allocation is incremental: the simulator maintains a per-link flow
// index and, on each arrival or completion, recomputes max-min rates only
// for the connected component of links and flows transitively sharing a
// link with the change. Flows outside that component provably keep their
// rates (see DESIGN.md). Within the component, progressive filling runs on
// a lazy min-heap of link saturation levels — a link's level (capacity
// minus frozen load, divided by its unfrozen flow count) only rises as
// flows freeze, so each reallocation costs O(flows·pathlen·log links)
// rather than O(rounds·(links+flows)). All scratch buffers are reused
// across events, so steady-state event processing is allocation-free apart
// from the per-event completion wake-up.
//
// Time is a float64 in seconds; sizes are bits; rates are bits per second.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"github.com/mayflower-dfs/mayflower/internal/fabric"
	"github.com/mayflower-dfs/mayflower/internal/maxmin"
	"github.com/mayflower-dfs/mayflower/internal/obs"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// FlowID identifies a flow within one Sim. It is the fabric-wide flow id
// type: the simulator is the virtual-time implementation of
// fabric.Backend.
type FlowID = fabric.FlowID

// completionEps is the residual size below which a flow counts as done.
const completionEps = 1e-3 // bits

// FlowConfig describes a flow to start. It is the shared fabric flow
// description, so drivers written against fabric.Backend use the same
// type on every substrate.
type FlowConfig = fabric.FlowConfig

// Sim implements the shared network-backend contract.
var _ fabric.Backend = (*Sim)(nil)

type simFlow struct {
	id          FlowID
	links       []int
	linkPos     []int // position of this flow in linkFlows[links[i]]
	remaining   float64
	transferred float64
	rate        float64
	onComplete  func(float64)

	idx  int   // position in Sim.activeList
	mark int64 // visited-epoch for component collection
	gone bool  // removed from the model (guards stale seed pointers)
}

// linkEntry records one flow crossing a link, along with which hop of the
// flow's path this link is (so removal can fix the flow's linkPos).
type linkEntry struct {
	f  *simFlow
	li int
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a flow-level network simulator over a fixed topology.
type Sim struct {
	topo     *topology.Topology
	capacity []float64

	now     float64
	nextID  FlowID
	nextSeq int64
	flows   map[FlowID]*simFlow
	events  eventHeap

	// Per-link flow index and dense active list; both are maintained
	// incrementally so reallocation and LinkRate never scan the whole
	// flow table.
	linkFlows  [][]linkEntry
	activeList []*simFlow

	linkBits []float64 // cumulative bits forwarded per directed link

	gen        int64 // rate-allocation generation, invalidates completions
	dirty      bool
	executing  bool
	rateNotify func()

	// Seeds for the next reallocation: flows added and links whose flow
	// set or capacity changed since the last one.
	seedFlows []*simFlow
	seedLinks []int

	// Scratch reused across reallocations (indexed by link id where
	// applicable); epoch stamps avoid clearing linkMark between events.
	epoch       int64
	linkMark    []int64
	rem         []float64
	nOn         []int
	compLinks   []int
	compFlows   []*simFlow
	satHeap     []satEntry
	doneScratch []*simFlow
	flowScratch []maxmin.Flow
	alloc       maxmin.Alloc

	met fabricMetrics
}

// fabricMetrics counts reallocation activity: how often rates were
// recomputed, which allocator ran, and how large the recomputed
// components were. All writers are atomic words, so the instrumentation
// never perturbs event ordering or rates.
type fabricMetrics struct {
	reallocs       obs.Counter
	globalFills    obs.Counter
	componentFills obs.Counter
	activeFlows    obs.Gauge
	componentFlows *obs.Histogram
}

// AttachMetrics publishes the simulator's reallocation counters into r
// under "netsim." names. Call before Run; the counters accumulate for
// the lifetime of the Sim regardless.
func (s *Sim) AttachMetrics(r *obs.Registry) {
	r.RegisterCounter("netsim.reallocs", &s.met.reallocs)
	r.RegisterCounter("netsim.global_fills", &s.met.globalFills)
	r.RegisterCounter("netsim.component_fills", &s.met.componentFills)
	r.RegisterGauge("netsim.active_flows", &s.met.activeFlows)
	r.RegisterHistogram("netsim.component_flows", s.met.componentFlows)
}

// globalFillCutoff selects the allocation strategy. At or below this many
// active flows, reallocate reruns the original global progressive filling
// (maxmin.Allocate's exact arithmetic), so small simulations — including
// every published figure — reproduce historical results bit-for-bit. Above
// it, where the global fill's O(rounds·(links+flows)) cost per event is
// unusable, the incremental component allocator takes over. The two differ
// only in floating-point rounding (increment association), never beyond
// ulps.
const globalFillCutoff = 512

// satEntry is a lazy min-heap entry: link saturates when the uniform fill
// level reaches level. Entries go stale when flows freeze on the link; a
// stale pop is detected by recomputing the level and re-queued.
type satEntry struct {
	level float64
	link  int
}

func satLess(a, b satEntry) bool {
	if a.level != b.level {
		return a.level < b.level
	}
	return a.link < b.link
}

func satPush(h []satEntry, e satEntry) []satEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !satLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// satPop removes the minimum entry (h[0]); callers read it first.
func satPop(h []satEntry) []satEntry {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && satLess(h[l], h[m]) {
			m = l
		}
		if r < n && satLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return h
}

// New creates a simulator for the given topology at time zero.
func New(topo *topology.Topology) *Sim {
	capacity := make([]float64, topo.NumLinks())
	for _, l := range topo.Links() {
		capacity[l.ID] = l.Capacity
	}
	sim := &Sim{
		topo:      topo,
		capacity:  capacity,
		flows:     make(map[FlowID]*simFlow),
		linkFlows: make([][]linkEntry, topo.NumLinks()),
		linkBits:  make([]float64, topo.NumLinks()),
		linkMark:  make([]int64, topo.NumLinks()),
		rem:       make([]float64, topo.NumLinks()),
		nOn:       make([]int, topo.NumLinks()),
	}
	sim.met.componentFlows = obs.NewHistogram(1, 1e6)
	return sim
}

// Topology returns the topology the simulator runs over.
func (s *Sim) Topology() *topology.Topology { return s.topo }

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// NumActiveFlows returns the number of in-flight flows.
func (s *Sim) NumActiveFlows() int { return len(s.flows) }

// ActiveFlows returns the ids of all in-flight flows (unordered).
func (s *Sim) ActiveFlows() []FlowID {
	out := make([]FlowID, 0, len(s.activeList))
	for _, f := range s.activeList {
		out = append(out, f.id)
	}
	return out
}

// Schedule runs fn inside the simulation at time t (>= Now).
func (s *Sim) Schedule(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: Schedule(%g) before now (%g)", t, s.now))
	}
	s.nextSeq++
	heap.Push(&s.events, &event{time: t, seq: s.nextSeq, fn: fn})
}

// StartFlow adds a flow at the current time and returns its id.
func (s *Sim) StartFlow(cfg FlowConfig) FlowID {
	if cfg.Bits < 0 {
		panic("netsim: negative flow size")
	}
	s.nextID++
	id := s.nextID
	links := make([]int, len(cfg.Links))
	for i, l := range cfg.Links {
		links[i] = int(l)
	}
	f := &simFlow{
		id:         id,
		links:      links,
		linkPos:    make([]int, len(links)),
		remaining:  cfg.Bits,
		onComplete: cfg.OnComplete,
	}
	s.flows[id] = f
	f.idx = len(s.activeList)
	s.activeList = append(s.activeList, f)
	for i, l := range links {
		f.linkPos[i] = len(s.linkFlows[l])
		s.linkFlows[l] = append(s.linkFlows[l], linkEntry{f: f, li: i})
	}
	s.seedFlows = append(s.seedFlows, f)
	s.dirty = true
	if !s.executing {
		s.reallocate()
	}
	return id
}

// CancelFlow removes a flow without running its completion callback.
// Cancelling an unknown (or already finished) flow is a no-op.
func (s *Sim) CancelFlow(id FlowID) {
	f, ok := s.flows[id]
	if !ok {
		return
	}
	s.removeFlow(f)
	if !s.executing {
		s.reallocate()
	}
}

// removeFlow detaches a flow from the model and seeds its links for the
// next reallocation (the bandwidth it held is redistributed within its
// component).
func (s *Sim) removeFlow(f *simFlow) {
	delete(s.flows, f.id)
	last := s.activeList[len(s.activeList)-1]
	s.activeList[f.idx] = last
	last.idx = f.idx
	s.activeList[len(s.activeList)-1] = nil
	s.activeList = s.activeList[:len(s.activeList)-1]
	for i, l := range f.links {
		entries := s.linkFlows[l]
		pos := f.linkPos[i]
		lastE := entries[len(entries)-1]
		entries[pos] = lastE
		lastE.f.linkPos[lastE.li] = pos
		entries[len(entries)-1] = linkEntry{}
		s.linkFlows[l] = entries[:len(entries)-1]
		s.seedLinks = append(s.seedLinks, l)
	}
	f.gone = true
	s.dirty = true
}

// SetLinkCapacity changes the capacity of one directed link (bps >= 0;
// zero models a dead link, starving every flow crossing it). The affected
// component's rates are recomputed immediately.
func (s *Sim) SetLinkCapacity(id topology.LinkID, bps float64) {
	if bps < 0 {
		panic(fmt.Sprintf("netsim: negative capacity %g for link %d", bps, id))
	}
	s.capacity[id] = bps
	s.seedLinks = append(s.seedLinks, int(id))
	s.dirty = true
	if !s.executing {
		s.reallocate()
	}
}

// FlowRate returns the ground-truth current rate of a flow, or 0 if the
// flow is not active.
func (s *Sim) FlowRate(id FlowID) float64 {
	f, ok := s.flows[id]
	if !ok {
		return 0
	}
	return f.rate
}

// FlowRemaining returns the ground-truth remaining bits of a flow, or 0.
func (s *Sim) FlowRemaining(id FlowID) float64 {
	f, ok := s.flows[id]
	if !ok {
		return 0
	}
	return f.remaining
}

// FlowTransferred returns the cumulative bits delivered for a flow so far:
// the per-flow byte counter an edge switch would export. It returns 0 for
// unknown flows (counters for completed flows are gone, as they are when a
// switch evicts a flow table entry).
func (s *Sim) FlowTransferred(id FlowID) float64 {
	f, ok := s.flows[id]
	if !ok {
		return 0
	}
	return f.transferred
}

// LinkTransferred returns the cumulative bits forwarded over a directed
// link: the port byte counter of the switch driving that link.
func (s *Sim) LinkTransferred(id topology.LinkID) float64 {
	return s.linkBits[id]
}

// LinkRate returns the ground-truth aggregate rate currently crossing a
// directed link. Cost is O(flows on the link) via the per-link index.
func (s *Sim) LinkRate(id topology.LinkID) float64 {
	var total float64
	for _, e := range s.linkFlows[id] {
		total += e.f.rate
	}
	return total
}

// Run processes events until none remain and no flows are active. If the
// event queue drains while flows are still active — a starved flow on a
// zero-capacity link never schedules a completion — Run reports them
// instead of returning silently; the survivors are available via Stalled.
func (s *Sim) Run() error {
	s.runUntil(math.Inf(1))
	if stalled := s.Stalled(); len(stalled) > 0 {
		return fmt.Errorf("netsim: event queue drained at t=%g with %d stalled zero-rate flow(s) (first: flow %d)",
			s.now, len(stalled), stalled[0])
	}
	return nil
}

// Stalled returns the ids (ascending) of active flows with zero allocated
// rate. Such flows make no progress and never complete; after Run returns
// an error this is the set of flows that kept it from finishing.
func (s *Sim) Stalled() []FlowID {
	var out []FlowID
	for _, f := range s.activeList {
		if f.rate == 0 {
			out = append(out, f.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunUntil processes events up to and including time t, then advances the
// clock to t. Pending later events remain queued.
func (s *Sim) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: RunUntil(%g) before now (%g)", t, s.now))
	}
	s.runUntil(t)
	if !math.IsInf(t, 1) {
		s.advanceTo(t)
	}
}

func (s *Sim) runUntil(t float64) {
	if s.dirty {
		s.reallocate()
	}
	for len(s.events) > 0 {
		next := s.events[0]
		if next.time > t {
			return
		}
		heap.Pop(&s.events)
		s.advanceTo(next.time)
		s.now = next.time

		s.executing = true
		next.fn()
		s.executing = false

		s.finishCompleted()
		if s.dirty {
			s.reallocate()
		}
	}
}

// advanceTo moves flow progress and link counters forward to time t without
// changing rates.
func (s *Sim) advanceTo(t float64) {
	dt := t - s.now
	if dt <= 0 {
		return
	}
	for _, f := range s.activeList {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		f.transferred += moved
		for _, l := range f.links {
			s.linkBits[l] += moved
		}
	}
	s.now = t
}

// finishCompleted removes flows whose remaining size reached zero and runs
// their callbacks (which may start new flows).
func (s *Sim) finishCompleted() {
	done := s.doneScratch[:0]
	for _, f := range s.activeList {
		if f.remaining <= completionEps {
			done = append(done, f)
		}
	}
	s.doneScratch = done[:0]
	if len(done) == 0 {
		return
	}
	// Deterministic order for callbacks.
	for i := 0; i < len(done); i++ {
		for j := i + 1; j < len(done); j++ {
			if done[j].id < done[i].id {
				done[i], done[j] = done[j], done[i]
			}
		}
	}
	for _, f := range done {
		s.removeFlow(f)
	}
	for _, f := range done {
		if f.onComplete != nil {
			s.executing = true
			f.onComplete(s.now)
			s.executing = false
		}
	}
}

// SetRateNotify installs fn to run (inside the simulation) after every
// rate reallocation. nil uninstalls. Part of the fabric.Backend
// contract; the hook is a single nil check per reallocation, so it stays
// off the allocation hot path.
func (s *Sim) SetRateNotify(fn func()) { s.rateNotify = fn }

// reallocate recomputes max-min fair rates affected by the changes since
// the last reallocation and schedules the next completion event. Below
// globalFillCutoff it reruns the legacy global fill; above it only the
// affected component is recomputed.
func (s *Sim) reallocate() {
	s.dirty = false
	s.gen++
	s.met.reallocs.Inc()
	s.met.activeFlows.Set(int64(len(s.activeList)))
	if len(s.activeList) <= globalFillCutoff {
		s.met.globalFills.Inc()
		s.reallocateGlobal()
	} else {
		s.met.componentFills.Inc()
		s.reallocateComponent()
	}
	if s.rateNotify != nil {
		s.rateNotify()
	}

	// Schedule the next completion wake-up from fresh estimates over all
	// active flows. This is a single O(active) pass (no allocation); the
	// estimates are recomputed rather than cached so event timestamps
	// stay bit-identical with a full recompute.
	nextDone := math.Inf(1)
	for _, f := range s.activeList {
		if f.remaining <= completionEps {
			nextDone = s.now // already done (zero-size flow)
			continue
		}
		if f.rate > 0 {
			if t := s.now + f.remaining/f.rate; t < nextDone {
				nextDone = t
			}
		}
	}
	if math.IsInf(nextDone, 1) {
		return
	}
	gen := s.gen
	s.Schedule(nextDone, func() {
		if gen != s.gen {
			return // stale: rates changed since this was scheduled
		}
		// advance/finish handled by the run loop after this event.
	})
}

// reallocateGlobal reruns progressive filling over every active flow with
// maxmin's exact arithmetic (via reusable scratch, so still allocation
// free). Small simulations take this path so their results stay
// bit-identical with the historical global allocator.
func (s *Sim) reallocateGlobal() {
	s.seedFlows = s.seedFlows[:0]
	s.seedLinks = s.seedLinks[:0]
	flows := s.flowScratch[:0]
	for _, f := range s.activeList {
		flows = append(flows, maxmin.Flow{Links: f.links, Demand: math.Inf(1)})
	}
	s.flowScratch = flows
	rates := s.alloc.Allocate(s.capacity, flows)
	for i, f := range s.activeList {
		f.rate = rates[i]
	}
}

// reallocateComponent recomputes max-min fair rates for the connected
// component of links and flows affected by the accumulated seeds.
//
// Correctness: a flow keeps its rate unless it transitively shares a link
// with a changed flow or link. Collection is conservative — it walks every
// link of every reached flow, saturated or not — so the recomputed set is
// a union of whole max-min components and progressive filling inside it
// reproduces exactly what a global fill would assign those flows.
func (s *Sim) reallocateComponent() {
	s.epoch++
	epoch := s.epoch

	// Collect the affected component: BFS over links, where visiting a
	// link visits every flow on it and visiting a flow enqueues all its
	// links. nOn ends up as the total flow count per component link.
	que := s.compLinks[:0]
	comp := s.compFlows[:0]
	for _, f := range s.seedFlows {
		if f.gone || f.mark == epoch {
			continue
		}
		f.mark = epoch
		comp = append(comp, f)
		for _, l := range f.links {
			if s.linkMark[l] != epoch {
				s.linkMark[l] = epoch
				s.rem[l] = s.capacity[l]
				s.nOn[l] = 0
				que = append(que, l)
			}
			s.nOn[l]++
		}
	}
	for _, l := range s.seedLinks {
		if s.linkMark[l] != epoch {
			s.linkMark[l] = epoch
			s.rem[l] = s.capacity[l]
			s.nOn[l] = 0
			que = append(que, l)
		}
	}
	s.seedFlows = s.seedFlows[:0]
	s.seedLinks = s.seedLinks[:0]
	for qi := 0; qi < len(que); qi++ {
		for _, e := range s.linkFlows[que[qi]] {
			f := e.f
			if f.mark == epoch {
				continue
			}
			f.mark = epoch
			comp = append(comp, f)
			for _, l := range f.links {
				if s.linkMark[l] != epoch {
					s.linkMark[l] = epoch
					s.rem[l] = s.capacity[l]
					s.nOn[l] = 0
					que = append(que, l)
				}
				s.nOn[l]++
			}
		}
	}
	s.compLinks = que
	s.compFlows = comp
	s.met.componentFlows.Observe(float64(len(comp)))

	// Progressive filling over the component via link saturation levels:
	// all unfrozen rates rise uniformly, and link l saturates when the
	// level reaches rem[l]/nOn[l]. Freezing a flow at level λ removes λ
	// of load and one active flow from each of its links, which can only
	// raise their saturation levels — so a lazy min-heap of levels pops
	// links in saturation order, re-queueing entries whose key went
	// stale. rate < 0 marks a flow as not yet frozen.
	h := s.satHeap[:0]
	for _, l := range que {
		if n := s.nOn[l]; n > 0 {
			h = satPush(h, satEntry{level: s.rem[l] / float64(n), link: l})
		}
	}
	for _, f := range comp {
		f.rate = -1
	}
	level := 0.0
	for len(h) > 0 {
		e := h[0]
		h = satPop(h)
		n := s.nOn[e.link]
		if n == 0 {
			continue
		}
		cur := s.rem[e.link] / float64(n)
		if cur != e.level {
			// Flows froze on this link since the entry was pushed;
			// its saturation level rose. Re-queue at the current key.
			h = satPush(h, satEntry{level: cur, link: e.link})
			continue
		}
		if cur > level {
			level = cur
		}
		// Link saturates: freeze every unfrozen flow crossing it at the
		// current fill level.
		for _, le := range s.linkFlows[e.link] {
			f := le.f
			if f.rate >= 0 {
				continue
			}
			f.rate = level
			for _, m := range f.links {
				s.nOn[m]--
				s.rem[m] -= level
			}
		}
	}
	s.satHeap = h
	for _, f := range comp {
		if f.rate < 0 {
			// No capacitated link constrains this flow.
			f.rate = math.Inf(1)
		}
	}
}
