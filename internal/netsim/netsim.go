// Package netsim is a flow-level, event-driven datacenter network
// simulator. It is the "simulations" half of the Mayflower evaluation
// (§6): flows traverse directed link paths through a topology, share link
// bandwidth max-min fairly (the steady-state behaviour of long TCP flows),
// and complete when their bytes are delivered.
//
// The simulator exposes two views of its state:
//
//   - Ground truth (FlowRate, FlowRemaining), used by tests and by the
//     simulator itself.
//
//   - Counter-based observations (FlowTransferred, LinkTransferred), the
//     byte counters an OpenFlow edge switch would export. The Flowserver's
//     stats collector is built on these, so its bandwidth estimates carry
//     the same staleness they would against real switches.
//
// Time is a float64 in seconds; sizes are bits; rates are bits per second.
package netsim

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/mayflower-dfs/mayflower/internal/maxmin"
	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// FlowID identifies a flow within one Sim.
type FlowID int64

// completionEps is the residual size below which a flow counts as done.
const completionEps = 1e-3 // bits

// FlowConfig describes a flow to start.
type FlowConfig struct {
	// Links is the directed path the flow takes.
	Links []topology.LinkID
	// Bits is the amount of data to transfer.
	Bits float64
	// OnComplete, if non-nil, runs inside the simulation when the flow
	// finishes, with the completion time.
	OnComplete func(endTime float64)
}

type simFlow struct {
	id          FlowID
	links       []int
	remaining   float64
	transferred float64
	rate        float64
	onComplete  func(float64)
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a flow-level network simulator over a fixed topology.
type Sim struct {
	topo     *topology.Topology
	capacity []float64

	now     float64
	nextID  FlowID
	nextSeq int64
	flows   map[FlowID]*simFlow
	events  eventHeap

	linkBits []float64 // cumulative bits forwarded per directed link

	gen       int64 // rate-allocation generation, invalidates completions
	dirty     bool
	executing bool
}

// New creates a simulator for the given topology at time zero.
func New(topo *topology.Topology) *Sim {
	capacity := make([]float64, topo.NumLinks())
	for _, l := range topo.Links() {
		capacity[l.ID] = l.Capacity
	}
	return &Sim{
		topo:     topo,
		capacity: capacity,
		flows:    make(map[FlowID]*simFlow),
		linkBits: make([]float64, topo.NumLinks()),
	}
}

// Topology returns the topology the simulator runs over.
func (s *Sim) Topology() *topology.Topology { return s.topo }

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// NumActiveFlows returns the number of in-flight flows.
func (s *Sim) NumActiveFlows() int { return len(s.flows) }

// ActiveFlows returns the ids of all in-flight flows (unordered).
func (s *Sim) ActiveFlows() []FlowID {
	out := make([]FlowID, 0, len(s.flows))
	for id := range s.flows {
		out = append(out, id)
	}
	return out
}

// Schedule runs fn inside the simulation at time t (>= Now).
func (s *Sim) Schedule(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: Schedule(%g) before now (%g)", t, s.now))
	}
	s.nextSeq++
	heap.Push(&s.events, &event{time: t, seq: s.nextSeq, fn: fn})
}

// StartFlow adds a flow at the current time and returns its id.
func (s *Sim) StartFlow(cfg FlowConfig) FlowID {
	if cfg.Bits < 0 {
		panic("netsim: negative flow size")
	}
	s.nextID++
	id := s.nextID
	links := make([]int, len(cfg.Links))
	for i, l := range cfg.Links {
		links[i] = int(l)
	}
	s.flows[id] = &simFlow{
		id:         id,
		links:      links,
		remaining:  cfg.Bits,
		onComplete: cfg.OnComplete,
	}
	s.dirty = true
	if !s.executing {
		s.reallocate()
	}
	return id
}

// CancelFlow removes a flow without running its completion callback.
// Cancelling an unknown (or already finished) flow is a no-op.
func (s *Sim) CancelFlow(id FlowID) {
	if _, ok := s.flows[id]; !ok {
		return
	}
	delete(s.flows, id)
	s.dirty = true
	if !s.executing {
		s.reallocate()
	}
}

// FlowRate returns the ground-truth current rate of a flow, or 0 if the
// flow is not active.
func (s *Sim) FlowRate(id FlowID) float64 {
	f, ok := s.flows[id]
	if !ok {
		return 0
	}
	return f.rate
}

// FlowRemaining returns the ground-truth remaining bits of a flow, or 0.
func (s *Sim) FlowRemaining(id FlowID) float64 {
	f, ok := s.flows[id]
	if !ok {
		return 0
	}
	return f.remaining
}

// FlowTransferred returns the cumulative bits delivered for a flow so far:
// the per-flow byte counter an edge switch would export. It returns 0 for
// unknown flows (counters for completed flows are gone, as they are when a
// switch evicts a flow table entry).
func (s *Sim) FlowTransferred(id FlowID) float64 {
	f, ok := s.flows[id]
	if !ok {
		return 0
	}
	return f.transferred
}

// LinkTransferred returns the cumulative bits forwarded over a directed
// link: the port byte counter of the switch driving that link.
func (s *Sim) LinkTransferred(id topology.LinkID) float64 {
	return s.linkBits[id]
}

// LinkRate returns the ground-truth aggregate rate currently crossing a
// directed link.
func (s *Sim) LinkRate(id topology.LinkID) float64 {
	var total float64
	for _, f := range s.flows {
		for _, l := range f.links {
			if l == int(id) {
				total += f.rate
			}
		}
	}
	return total
}

// Run processes events until none remain and no flows are active.
func (s *Sim) Run() { s.runUntil(math.Inf(1)) }

// RunUntil processes events up to and including time t, then advances the
// clock to t. Pending later events remain queued.
func (s *Sim) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: RunUntil(%g) before now (%g)", t, s.now))
	}
	s.runUntil(t)
	if !math.IsInf(t, 1) {
		s.advanceTo(t)
		s.now = t
	}
}

func (s *Sim) runUntil(t float64) {
	if s.dirty {
		s.reallocate()
	}
	for len(s.events) > 0 {
		next := s.events[0]
		if next.time > t {
			return
		}
		heap.Pop(&s.events)
		s.advanceTo(next.time)
		s.now = next.time

		s.executing = true
		next.fn()
		s.executing = false

		s.finishCompleted()
		if s.dirty {
			s.reallocate()
		}
	}
}

// advanceTo moves flow progress and link counters forward to time t without
// changing rates.
func (s *Sim) advanceTo(t float64) {
	dt := t - s.now
	if dt <= 0 {
		return
	}
	for _, f := range s.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		f.transferred += moved
		for _, l := range f.links {
			s.linkBits[l] += moved
		}
	}
	s.now = t
}

// finishCompleted removes flows whose remaining size reached zero and runs
// their callbacks (which may start new flows).
func (s *Sim) finishCompleted() {
	var done []*simFlow
	for _, f := range s.flows {
		if f.remaining <= completionEps {
			done = append(done, f)
		}
	}
	if len(done) == 0 {
		return
	}
	// Deterministic order for callbacks.
	for i := 0; i < len(done); i++ {
		for j := i + 1; j < len(done); j++ {
			if done[j].id < done[i].id {
				done[i], done[j] = done[j], done[i]
			}
		}
	}
	for _, f := range done {
		delete(s.flows, f.id)
	}
	s.dirty = true
	for _, f := range done {
		if f.onComplete != nil {
			s.executing = true
			f.onComplete(s.now)
			s.executing = false
		}
	}
}

// reallocate recomputes max-min fair rates and schedules the next
// completion event.
func (s *Sim) reallocate() {
	s.dirty = false
	s.gen++

	ids := make([]FlowID, 0, len(s.flows))
	flows := make([]maxmin.Flow, 0, len(s.flows))
	for id, f := range s.flows {
		ids = append(ids, id)
		flows = append(flows, maxmin.Flow{Links: f.links, Demand: math.Inf(1)})
	}
	rates := maxmin.Allocate(s.capacity, flows)

	nextDone := math.Inf(1)
	for i, id := range ids {
		f := s.flows[id]
		f.rate = rates[i]
		if f.remaining <= completionEps {
			nextDone = s.now // already done (zero-size flow)
			continue
		}
		if f.rate > 0 {
			if t := s.now + f.remaining/f.rate; t < nextDone {
				nextDone = t
			}
		}
	}
	if math.IsInf(nextDone, 1) {
		return
	}
	gen := s.gen
	s.Schedule(nextDone, func() {
		if gen != s.gen {
			return // stale: rates changed since this was scheduled
		}
		// advance/finish handled by the run loop after this event.
	})
}
