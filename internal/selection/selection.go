// Package selection implements the replica- and path-selection baselines
// Mayflower is compared against in §6.2 of the paper:
//
//   - Nearest: static, topology-distance-based replica selection (what
//     HDFS does with rack awareness); ties are broken uniformly at random,
//     which the paper notes degenerates to random selection when replicas
//     are equidistant.
//
//   - HDFSRackAware: HDFS's actual read policy — prefer a replica in the
//     client's rack if one exists, otherwise fall back to random (used for
//     the Figure 8 prototype comparison).
//
//   - SinbadR: the paper's read-variant of Sinbad. It scores each
//     candidate replica by the measured utilization of the core-facing
//     links on the replica's side (host uplink and its edge switch's
//     uplinks) and picks the least-utilized one. If the client shares a
//     pod with any replica, the search space is restricted to that pod.
//
//   - ECMP: hash-based equal-cost multi-path selection among the shortest
//     paths, the network-layer baseline.
//
// The Mayflower joint selector and the Mayflower path-only scheduler live
// in package flowserver; this package covers everything it is compared to.
package selection

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

// UtilizationView supplies (possibly stale) link-load measurements, as a
// monitoring system like Sinbad's end-host agents would. Values are in
// bits per second of observed traffic on the directed link.
type UtilizationView interface {
	LinkLoad(id topology.LinkID) float64
}

// StaticUtilization is a fixed UtilizationView, convenient for tests and
// for snapshot-based monitors that rebuild the map each polling cycle.
type StaticUtilization map[topology.LinkID]float64

// LinkLoad returns the recorded load for the link, or 0 if absent.
func (u StaticUtilization) LinkLoad(id topology.LinkID) float64 { return u[id] }

var _ UtilizationView = StaticUtilization(nil)

// Nearest selects the replica with the smallest topology distance to the
// client, breaking ties uniformly at random.
type Nearest struct {
	topo *topology.Topology
	rng  *rand.Rand
}

// NewNearest creates a Nearest selector.
func NewNearest(topo *topology.Topology, rng *rand.Rand) *Nearest {
	return &Nearest{topo: topo, rng: rng}
}

// SelectReplica returns the closest replica to the client.
func (n *Nearest) SelectReplica(client topology.NodeID, replicas []topology.NodeID) (topology.NodeID, error) {
	if len(replicas) == 0 {
		return 0, fmt.Errorf("selection: no replicas")
	}
	best := make([]topology.NodeID, 0, len(replicas))
	bestDist := -1
	for _, r := range replicas {
		d := n.topo.Distance(client, r)
		switch {
		case bestDist < 0 || d < bestDist:
			bestDist = d
			best = append(best[:0], r)
		case d == bestDist:
			best = append(best, r)
		}
	}
	return best[n.rng.Intn(len(best))], nil
}

// HDFSRackAware selects a replica the way HDFS does for reads: a replica
// on the client's host if present, then a replica in the client's rack,
// otherwise a uniformly random replica.
type HDFSRackAware struct {
	topo *topology.Topology
	rng  *rand.Rand
}

// NewHDFSRackAware creates an HDFSRackAware selector.
func NewHDFSRackAware(topo *topology.Topology, rng *rand.Rand) *HDFSRackAware {
	return &HDFSRackAware{topo: topo, rng: rng}
}

// SelectReplica returns the replica HDFS's rack-aware policy would read.
func (h *HDFSRackAware) SelectReplica(client topology.NodeID, replicas []topology.NodeID) (topology.NodeID, error) {
	if len(replicas) == 0 {
		return 0, fmt.Errorf("selection: no replicas")
	}
	for _, r := range replicas {
		if r == client {
			return r, nil
		}
	}
	var local []topology.NodeID
	for _, r := range replicas {
		if h.topo.SameRack(client, r) {
			local = append(local, r)
		}
	}
	if len(local) > 0 {
		return local[h.rng.Intn(len(local))], nil
	}
	return replicas[h.rng.Intn(len(replicas))], nil
}

// SinbadR is the read-variant of Sinbad (§6.2): dynamic replica selection
// driven by measured link utilization. Two modifications adapt Sinbad's
// write-time placement logic to reads: utilization is estimated on the
// links facing toward the core on the data source's side (reads flow in
// the opposite direction from writes), and the search space collapses to a
// pod that contains both the client and a replica.
type SinbadR struct {
	topo *topology.Topology
	rng  *rand.Rand
	util UtilizationView
}

// NewSinbadR creates a Sinbad-R selector over a utilization view.
func NewSinbadR(topo *topology.Topology, rng *rand.Rand, util UtilizationView) *SinbadR {
	return &SinbadR{topo: topo, rng: rng, util: util}
}

// SelectReplica returns the replica whose core-facing links are least
// utilized, relative to their capacity.
func (s *SinbadR) SelectReplica(client topology.NodeID, replicas []topology.NodeID) (topology.NodeID, error) {
	if len(replicas) == 0 {
		return 0, fmt.Errorf("selection: no replicas")
	}
	for _, r := range replicas {
		if r == client {
			return r, nil
		}
	}

	// Pod restriction: if the client shares a pod with any replica, only
	// those replicas are considered.
	candidates := replicas
	var samePod []topology.NodeID
	for _, r := range replicas {
		if s.topo.SamePod(client, r) {
			samePod = append(samePod, r)
		}
	}
	if len(samePod) > 0 {
		candidates = samePod
	}

	var best []topology.NodeID
	bestScore := -1.0
	for _, r := range candidates {
		score := s.score(client, r)
		switch {
		case bestScore < 0 || score < bestScore-scoreEps:
			bestScore = score
			best = append(best[:0], r)
		case score <= bestScore+scoreEps:
			best = append(best, r)
		}
	}
	return best[s.rng.Intn(len(best))], nil
}

const scoreEps = 1e-9

// score estimates the congestion a read from replica r would meet, as the
// worst relative utilization among the core-facing links Sinbad-R can
// observe on the replica's side: the replica's host uplink and, when the
// client is outside the replica's rack, the replica's edge-switch uplinks
// (of which the least-loaded would carry the flow).
func (s *SinbadR) score(client, r topology.NodeID) float64 {
	uplink := s.topo.UplinkOf(r)
	score := s.relativeLoad(uplink)
	if s.topo.SameRack(client, r) {
		return score
	}
	bestEdge := -1.0
	for _, l := range s.topo.EdgeUplinks(r) {
		u := s.relativeLoad(l)
		if bestEdge < 0 || u < bestEdge {
			bestEdge = u
		}
	}
	if bestEdge > score {
		score = bestEdge
	}
	return score
}

func (s *SinbadR) relativeLoad(l topology.LinkID) float64 {
	c := s.topo.Link(l).Capacity
	if c <= 0 {
		return 0
	}
	return s.util.LinkLoad(l) / c
}

// ECMP selects among the shortest paths between two hosts by hashing a
// flow key, the standard equal-cost multi-path behaviour (RFC 2992): a
// given flow sticks to one path, and distinct flows spread statistically.
type ECMP struct {
	topo *topology.Topology
}

// NewECMP creates an ECMP path selector.
func NewECMP(topo *topology.Topology) *ECMP {
	return &ECMP{topo: topo}
}

// SelectPath returns the hash-selected shortest path from src to dst for
// the given flow key (e.g. a connection identifier). It returns an error
// if src == dst, where no network path is needed.
func (e *ECMP) SelectPath(src, dst topology.NodeID, flowKey uint64) (topology.Path, error) {
	paths := e.topo.ShortestPaths(src, dst)
	if len(paths) == 0 {
		return nil, fmt.Errorf("selection: no path from %d to %d", src, dst)
	}
	h := fnv.New64a()
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(src))
	binary.BigEndian.PutUint64(buf[8:16], uint64(dst))
	binary.BigEndian.PutUint64(buf[16:24], flowKey)
	_, _ = h.Write(buf[:])
	return paths[h.Sum64()%uint64(len(paths))], nil
}
