package selection

import (
	"math/rand"
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.PaperTestbed(8))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNearestPrefersCloser(t *testing.T) {
	topo := testTopo(t)
	n := NewNearest(topo, rand.New(rand.NewSource(1)))
	client := topo.HostAt(0, 0, 0)
	sameRack := topo.HostAt(0, 0, 1)
	samePod := topo.HostAt(0, 1, 0)
	otherPod := topo.HostAt(2, 0, 0)

	got, err := n.SelectReplica(client, []topology.NodeID{otherPod, samePod, sameRack})
	if err != nil {
		t.Fatal(err)
	}
	if got != sameRack {
		t.Errorf("SelectReplica = %v, want same-rack replica %v", got, sameRack)
	}

	if _, err := n.SelectReplica(client, nil); err == nil {
		t.Error("empty replica list accepted")
	}
}

func TestNearestTieBreaksRandomly(t *testing.T) {
	topo := testTopo(t)
	n := NewNearest(topo, rand.New(rand.NewSource(2)))
	client := topo.HostAt(0, 0, 0)
	// Both replicas are cross-pod, i.e. equidistant: "in this scenario,
	// HDFS is just performing random replica selection."
	a, b := topo.HostAt(1, 0, 0), topo.HostAt(2, 0, 0)
	seen := make(map[topology.NodeID]int)
	for i := 0; i < 400; i++ {
		got, err := n.SelectReplica(client, []topology.NodeID{a, b})
		if err != nil {
			t.Fatal(err)
		}
		seen[got]++
	}
	if seen[a] < 100 || seen[b] < 100 {
		t.Errorf("tie-break counts %v, want both well represented", seen)
	}
}

func TestHDFSRackAware(t *testing.T) {
	topo := testTopo(t)
	h := NewHDFSRackAware(topo, rand.New(rand.NewSource(3)))
	client := topo.HostAt(0, 0, 0)
	sameRack := topo.HostAt(0, 0, 2)
	remote1 := topo.HostAt(1, 0, 0)
	remote2 := topo.HostAt(2, 0, 0)

	got, err := h.SelectReplica(client, []topology.NodeID{remote1, sameRack, remote2})
	if err != nil {
		t.Fatal(err)
	}
	if got != sameRack {
		t.Errorf("SelectReplica = %v, want in-rack replica", got)
	}

	// Local replica beats everything.
	got, err = h.SelectReplica(client, []topology.NodeID{remote1, client})
	if err != nil {
		t.Fatal(err)
	}
	if got != client {
		t.Errorf("SelectReplica = %v, want local replica", got)
	}

	// No rack-local replica: uniformly random.
	seen := make(map[topology.NodeID]int)
	for i := 0; i < 400; i++ {
		got, err = h.SelectReplica(client, []topology.NodeID{remote1, remote2})
		if err != nil {
			t.Fatal(err)
		}
		seen[got]++
	}
	if seen[remote1] < 100 || seen[remote2] < 100 {
		t.Errorf("random fallback counts %v", seen)
	}
	if _, err := h.SelectReplica(client, nil); err == nil {
		t.Error("empty replica list accepted")
	}
}

func TestSinbadRPicksLeastUtilized(t *testing.T) {
	topo := testTopo(t)
	hot := topo.HostAt(1, 0, 0)
	cold := topo.HostAt(2, 0, 0)
	client := topo.HostAt(0, 0, 0)

	util := StaticUtilization{}
	// Saturate the hot replica's host uplink.
	util[topo.UplinkOf(hot)] = topo.Link(topo.UplinkOf(hot)).Capacity

	s := NewSinbadR(topo, rand.New(rand.NewSource(4)), util)
	for i := 0; i < 20; i++ {
		got, err := s.SelectReplica(client, []topology.NodeID{hot, cold})
		if err != nil {
			t.Fatal(err)
		}
		if got != cold {
			t.Fatalf("SelectReplica = %v, want cold replica %v", got, cold)
		}
	}
}

func TestSinbadRUsesEdgeUplinks(t *testing.T) {
	topo := testTopo(t)
	client := topo.HostAt(0, 0, 0)
	repA := topo.HostAt(1, 0, 0)
	repB := topo.HostAt(2, 0, 0)

	util := StaticUtilization{}
	// Both edge uplinks of repA's rack are fully loaded; its host uplink
	// is idle. Sinbad-R must still see the congestion.
	for _, l := range topo.EdgeUplinks(repA) {
		util[l] = topo.Link(l).Capacity
	}
	s := NewSinbadR(topo, rand.New(rand.NewSource(5)), util)
	got, err := s.SelectReplica(client, []topology.NodeID{repA, repB})
	if err != nil {
		t.Fatal(err)
	}
	if got != repB {
		t.Errorf("SelectReplica = %v, want %v (repA edge tier congested)", got, repB)
	}

	// An in-rack read does not cross the edge uplinks, so their load must
	// not matter then.
	clientInRack := topo.HostAt(1, 0, 1)
	got, err = s.SelectReplica(clientInRack, []topology.NodeID{repA})
	if err != nil {
		t.Fatal(err)
	}
	if got != repA {
		t.Errorf("in-rack SelectReplica = %v, want %v", got, repA)
	}
}

func TestSinbadRPodRestriction(t *testing.T) {
	topo := testTopo(t)
	client := topo.HostAt(0, 0, 0)
	podReplica := topo.HostAt(0, 1, 0) // same pod as client
	farReplica := topo.HostAt(3, 0, 0)

	util := StaticUtilization{}
	// Even with the pod replica's uplink congested, the pod restriction
	// keeps the search inside the client's pod.
	util[topo.UplinkOf(podReplica)] = topo.Link(topo.UplinkOf(podReplica)).Capacity

	s := NewSinbadR(topo, rand.New(rand.NewSource(6)), util)
	got, err := s.SelectReplica(client, []topology.NodeID{podReplica, farReplica})
	if err != nil {
		t.Fatal(err)
	}
	if got != podReplica {
		t.Errorf("SelectReplica = %v, want pod-restricted %v", got, podReplica)
	}
}

func TestSinbadRLocalReplica(t *testing.T) {
	topo := testTopo(t)
	client := topo.HostAt(0, 0, 0)
	s := NewSinbadR(topo, rand.New(rand.NewSource(7)), StaticUtilization{})
	got, err := s.SelectReplica(client, []topology.NodeID{topo.HostAt(1, 0, 0), client})
	if err != nil {
		t.Fatal(err)
	}
	if got != client {
		t.Errorf("SelectReplica = %v, want local", got)
	}
	if _, err := s.SelectReplica(client, nil); err == nil {
		t.Error("empty replica list accepted")
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	topo := testTopo(t)
	e := NewECMP(topo)
	src, dst := topo.HostAt(0, 0, 0), topo.HostAt(1, 0, 0)

	p1, err := e.SelectPath(src, dst, 42)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.SelectPath(src, dst, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatal("paths differ in length")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same flow key hashed to different paths")
		}
	}
	if !topo.ValidPath(p1, src, dst) {
		t.Error("ECMP returned an invalid path")
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	topo := testTopo(t)
	e := NewECMP(topo)
	src, dst := topo.HostAt(0, 0, 0), topo.HostAt(1, 0, 0)

	counts := make(map[topology.LinkID]int)
	const flows = 800
	for k := uint64(0); k < flows; k++ {
		p, err := e.SelectPath(src, dst, k)
		if err != nil {
			t.Fatal(err)
		}
		counts[p[1]]++ // second hop: edge → one of two aggregation switches
	}
	if len(counts) < 2 {
		t.Fatalf("ECMP used only %d second hops", len(counts))
	}
	for l, c := range counts {
		if c < flows/8 {
			t.Errorf("second hop %d only got %d/%d flows", l, c, flows)
		}
	}
}

func TestECMPNoPath(t *testing.T) {
	topo := testTopo(t)
	e := NewECMP(topo)
	h := topo.HostAt(0, 0, 0)
	if _, err := e.SelectPath(h, h, 1); err == nil {
		t.Error("self path accepted")
	}
}
