// Benchmarks regenerating every table and figure of the Mayflower
// paper's evaluation (§6). Each BenchmarkFigure* runs a scaled-down
// version of the corresponding experiment per iteration and reports the
// headline metric through b.ReportMetric, so `go test -bench=.` doubles
// as a reproduction sweep:
//
//	Figure 4   replica/path selection comparison (normalized)
//	Figure 5   client locality sweep
//	Figure 6a  λ sweep, rack-heavy locality
//	Figure 6b  λ sweep, core-heavy locality
//	Figure 7   oversubscription impact
//	Figure 8   prototype vs HDFS over the emulated network
//	§4.3       multi-replica parallel reads
//	Ablations  Eq. 2 impact term, update-freeze, poll interval
//
// Full-scale runs (paper-sized job counts, tables printed) come from
// cmd/mayflower-sim and cmd/mayflower-bench; EXPERIMENTS.md records
// paper-versus-measured numbers for each.
package mayflower_test

import (
	"testing"

	"github.com/mayflower-dfs/mayflower/internal/experiment"
	"github.com/mayflower-dfs/mayflower/internal/testbed"
	"github.com/mayflower-dfs/mayflower/internal/workload"
)

// benchConfig is a reduced-scale experiment configuration that keeps a
// single benchmark iteration well under a second.
func benchConfig() experiment.Config {
	cfg := experiment.Defaults(experiment.SchemeMayflower)
	cfg.NumJobs = 400
	cfg.WarmupJobs = 50
	cfg.NumFiles = 150
	return cfg
}

func BenchmarkFigure4(b *testing.B) {
	var lastRatio float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.Figure4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		lastRatio = tbl.Rows[len(tbl.Rows)-1].AvgRatio // Nearest ECMP vs Mayflower
	}
	b.ReportMetric(lastRatio, "nearestECMP/mayflower")
}

func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	cfg.NumJobs = 300
	cfg.WarmupJobs = 40
	var worst float64
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, tbl := range tables {
			for _, row := range tbl.Rows {
				if row.AvgRatio > worst {
					worst = row.AvgRatio
				}
			}
		}
	}
	b.ReportMetric(worst, "worst-ratio")
}

func BenchmarkFigure6a(b *testing.B) {
	cfg := benchConfig()
	cfg.NumJobs = 250
	cfg.WarmupJobs = 30
	var mayflowerHigh float64
	for i := 0; i < b.N; i++ {
		sw, err := experiment.Figure6a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range sw.Points {
			if p.Scheme == experiment.SchemeMayflower && p.X == 0.14 {
				mayflowerHigh = p.Mean
			}
		}
	}
	b.ReportMetric(mayflowerHigh, "mayflower-mean-s@0.14")
}

func BenchmarkFigure6b(b *testing.B) {
	cfg := benchConfig()
	cfg.NumJobs = 250
	cfg.WarmupJobs = 30
	var mayflowerHigh float64
	for i := 0; i < b.N; i++ {
		sw, err := experiment.Figure6b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range sw.Points {
			if p.Scheme == experiment.SchemeMayflower && p.X == 0.10 {
				mayflowerHigh = p.Mean
			}
		}
	}
	b.ReportMetric(mayflowerHigh, "mayflower-mean-s@0.10")
}

func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	cfg.NumJobs = 300
	cfg.WarmupJobs = 40
	var growth float64
	for i := 0; i < b.N; i++ {
		sw, err := experiment.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var at8, at24 float64
		for _, p := range sw.Points {
			if p.Scheme == experiment.SchemeMayflower {
				switch p.X {
				case 8:
					at8 = p.Mean
				case 24:
					at24 = p.Mean
				}
			}
		}
		if at8 > 0 {
			growth = at24 / at8
		}
	}
	b.ReportMetric(growth, "mean24:1/mean8:1")
}

func BenchmarkMultiReplica(b *testing.B) {
	cfg := benchConfig()
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.MultiRead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reduction = res.MeanReductionPct
	}
	b.ReportMetric(reduction, "mean-reduction-%")
}

func BenchmarkAblateCostTerm(b *testing.B) {
	cfg := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblateCostTerm(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.MeanRatio
	}
	b.ReportMetric(ratio, "ablated/full-mean")
}

func BenchmarkAblateFreeze(b *testing.B) {
	cfg := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblateFreeze(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.MeanRatio
	}
	b.ReportMetric(ratio, "ablated/full-mean")
}

func BenchmarkAblatePollInterval(b *testing.B) {
	cfg := benchConfig()
	cfg.NumJobs = 250
	cfg.WarmupJobs = 30
	var spread float64
	for i := 0; i < b.N; i++ {
		sw, err := experiment.PollSweep(cfg, []float64{0.25, 1, 4})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := sw.Points[0].Mean, sw.Points[0].Mean
		for _, p := range sw.Points {
			if p.Mean < lo {
				lo = p.Mean
			}
			if p.Mean > hi {
				hi = p.Mean
			}
		}
		if lo > 0 {
			spread = hi / lo
		}
	}
	b.ReportMetric(spread, "worst/best-mean")
}

// BenchmarkFigure8 boots the full prototype (real servers, emulated
// network) per iteration, so each iteration costs seconds of wall clock;
// run with -benchtime=1x for a single reproduction pass.
func BenchmarkFigure8(b *testing.B) {
	modes := []testbed.Mode{testbed.ModeMayflower, testbed.ModeHDFSMayflower, testbed.ModeHDFSECMP}
	var hdfsOverMayflower float64
	for i := 0; i < b.N; i++ {
		means := make(map[testbed.Mode]float64, len(modes))
		for _, mode := range modes {
			cfg := testbed.DefaultExperiment(mode)
			cfg.NumJobs = 60
			cfg.WarmupJobs = 10
			cfg.NumFiles = 20
			cfg.Locality = workload.LocalityRackHeavy
			res, err := testbed.RunExperiment(cfg)
			if err != nil {
				b.Fatal(err)
			}
			means[mode] = res.Summary.Mean
		}
		if m := means[testbed.ModeMayflower]; m > 0 {
			hdfsOverMayflower = means[testbed.ModeHDFSECMP] / m
		}
	}
	b.ReportMetric(hdfsOverMayflower, "hdfsECMP/mayflower")
}

// BenchmarkBackgroundTraffic runs the cross-traffic robustness sweep:
// Mayflower's mean at background load 1.0 over its mean at 0.
func BenchmarkBackgroundTraffic(b *testing.B) {
	cfg := benchConfig()
	cfg.NumJobs = 300
	cfg.WarmupJobs = 40
	var degradation float64
	for i := 0; i < b.N; i++ {
		sw, err := experiment.BackgroundSweep(cfg, []float64{0, 1})
		if err != nil {
			b.Fatal(err)
		}
		var at0, at1 float64
		for _, p := range sw.Points {
			if p.Scheme == experiment.SchemeMayflower {
				switch p.X {
				case 0:
					at0 = p.Mean
				case 1:
					at1 = p.Mean
				}
			}
		}
		if at0 > 0 {
			degradation = at1 / at0
		}
	}
	b.ReportMetric(degradation, "mean-bg1/bg0")
}
